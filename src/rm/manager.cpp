#include "polaris/rm/manager.hpp"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "polaris/des/time.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/stats.hpp"

namespace polaris::rm {

namespace {

/// Cycle-local capacity profile for conservative backfill: a step function
/// of free nodes over future time, seeded from the running set's planned
/// completions.  Each scanned job reserves the earliest window that fits,
/// so no later-scanned job can delay an earlier-scanned one.  Rebuilt per
/// rate-limited cycle (it lives O(depth + running) long), never stored.
class Profile {
 public:
  Profile(double now, double free_now,
          const std::vector<PlanningTimeline::RunEnd>& ends) {
    pts_.push_back({now, free_now});
    double f = free_now;
    for (const auto& e : ends) {
      f += e.width;
      if (e.end <= pts_.back().time) {
        pts_.back().free = f;
      } else {
        pts_.push_back({e.end, f});
      }
    }
  }

  /// Earliest start >= now for `width` nodes over `dur` seconds; reserves
  /// the window.
  double reserve(double width, double dur) {
    for (std::size_t i = 0; i < pts_.size(); ++i) {
      if (pts_[i].free < width) continue;
      const double t = pts_[i].time;
      const double end = t + dur;
      bool fits = true;
      std::size_t j = i;
      while (j < pts_.size() && pts_[j].time < end) {
        if (pts_[j].free < width) {
          fits = false;
          break;
        }
        ++j;
      }
      if (!fits) continue;
      // Split at `end`, then subtract the width over [t, end).
      if (j == pts_.size() || pts_[j].time > end) {
        pts_.insert(pts_.begin() + static_cast<std::ptrdiff_t>(j),
                    {end, pts_[j - 1].free});
      }
      for (std::size_t k = i; k < j; ++k) pts_[k].free -= width;
      return t;
    }
    // Beyond every breakpoint the machine is fully drained of running
    // jobs; the request fits there (width <= machine checked upstream).
    const double t = pts_.back().time;
    pts_.push_back({t + dur, pts_.back().free});
    pts_[pts_.size() - 2].free -= width;
    return t;
  }

 private:
  struct Point {
    double time;
    double free;  ///< free nodes from `time` to the next point
  };
  std::vector<Point> pts_;
};

}  // namespace

ResourceManager::ResourceManager(des::Engine& engine, std::size_t nodes,
                                 RmConfig cfg)
    : engine_(&engine),
      cfg_(cfg),
      alloc_(nodes),
      acct_(AccountingStore::Config{cfg.fairshare_halflife}) {
  head_.fill(kNilIndex);
  tail_.fill(kNilIndex);
  const std::uint32_t p = std::max(1u, cfg_.priority_tiers);
  const std::uint32_t f = cfg_.fair_share ? std::max(1u, cfg_.fairshare_tiers)
                                          : 1u;
  // One tier above the normal range is kept for reservation-boosted jobs.
  POLARIS_CHECK_MSG(p * f <= kMaxTiers - 1, "rm: too many priority tiers");
}

ResourceManager::ResourceManager(des::Engine& engine,
                                 const fabric::Topology& topo, RmConfig cfg)
    : engine_(&engine),
      cfg_(cfg),
      alloc_(cfg.placement == RmConfig::Placement::kTopology
                 ? BlockAllocator(topo)
                 : BlockAllocator(topo.node_count())),
      acct_(AccountingStore::Config{cfg.fairshare_halflife}) {
  head_.fill(kNilIndex);
  tail_.fill(kNilIndex);
  const std::uint32_t p = std::max(1u, cfg_.priority_tiers);
  const std::uint32_t f = cfg_.fair_share ? std::max(1u, cfg_.fairshare_tiers)
                                          : 1u;
  POLARIS_CHECK_MSG(p * f <= kMaxTiers - 1, "rm: too many priority tiers");
}

double ResourceManager::now_s() const { return des::to_seconds(engine_->now()); }

std::uint32_t ResourceManager::compute_tier(const JobSpec& spec) const {
  const std::uint32_t p_tiers = std::max(1u, cfg_.priority_tiers);
  const std::uint32_t f_tiers =
      cfg_.fair_share ? std::max(1u, cfg_.fairshare_tiers) : 1u;
  const std::uint32_t p = static_cast<std::uint32_t>(std::clamp<std::int32_t>(
      spec.priority, 0, static_cast<std::int32_t>(p_tiers) - 1));
  std::uint32_t f = 0;
  if (f_tiers > 1) {
    const double factor = acct_.user_factor(spec.user, now_s());
    f = std::min(f_tiers - 1,
                 static_cast<std::uint32_t>(factor *
                                            static_cast<double>(f_tiers)));
  }
  return p * f_tiers + f;
}

void ResourceManager::submit(const JobSpec& spec) {
  POLARIS_CHECK(spec.width >= 1 && spec.width <= alloc_.node_count());
  POLARIS_CHECK_MSG(job_index_.find(spec.id) == nullptr,
                    "rm: duplicate job id");
  if (spec.reservation != kNoReservation) {
    POLARIS_CHECK(spec.reservation < reservations_.size());
  }
  const auto slot = static_cast<std::uint32_t>(jobs_.size());
  jobs_.emplace_back();
  RmJob& job = jobs_.back();
  job.spec = spec;
  job.slot = slot;
  job.rm = this;
  job_index_[spec.id] = slot;
  const des::SimTime at =
      std::max(engine_->now(), des::from_seconds(spec.submit));
  engine_->schedule_raw_at(at, &arrival_cb, &job);
}

void ResourceManager::arrival_cb(void* ctx) {
  RmJob& job = *static_cast<RmJob*>(ctx);
  ResourceManager& rm = *job.rm;
  rm.acct_.on_submit(job.spec);
  job.tier = rm.compute_tier(job.spec);
  if (job.spec.reservation != kNoReservation) {
    Reservation& r = rm.reservations_[job.spec.reservation];
    if (r.active) {
      job.tier = rm.boost_tier();
    } else if (!r.expired) {
      r.tagged.push_back(job.slot);
    }
  }
  rm.enqueue(job, /*front=*/false);
  if (rm.have_track_) {
    rm.tracer_->instant(rm.track_, "submit job " + std::to_string(job.spec.id),
                        "rm");
  }
  rm.run_queue();
}

void ResourceManager::enqueue(RmJob& job, bool front) {
  POLARIS_CHECK(!job.queued);
  const std::uint32_t t = job.tier;
  job.queued = true;
  job.prev = kNilIndex;
  job.next = kNilIndex;
  if (head_[t] == kNilIndex) {
    head_[t] = tail_[t] = job.slot;
    queue_mask_ |= 1ull << t;
  } else if (front) {
    job.next = head_[t];
    jobs_[head_[t]].prev = job.slot;
    head_[t] = job.slot;
  } else {
    job.prev = tail_[t];
    jobs_[tail_[t]].next = job.slot;
    tail_[t] = job.slot;
  }
  ++pending_count_;
}

void ResourceManager::dequeue(RmJob& job) {
  POLARIS_CHECK(job.queued);
  const std::uint32_t t = job.tier;
  if (job.prev != kNilIndex) {
    jobs_[job.prev].next = job.next;
  } else {
    head_[t] = job.next;
  }
  if (job.next != kNilIndex) {
    jobs_[job.next].prev = job.prev;
  } else {
    tail_[t] = job.prev;
  }
  if (head_[t] == kNilIndex) queue_mask_ &= ~(1ull << t);
  job.prev = job.next = kNilIndex;
  job.queued = false;
  --pending_count_;
}

ResourceManager::RmJob* ResourceManager::queue_head() {
  POLARIS_CHECK(queue_mask_ != 0);
  const auto t = static_cast<std::uint32_t>(
      63 - std::countl_zero(queue_mask_));
  return &jobs_[head_[t]];
}

bool ResourceManager::reservation_admits(const RmJob& job) const {
  if (job.spec.reservation == kNoReservation) return true;
  const Reservation& r = reservations_[job.spec.reservation];
  if (r.expired) return true;  // window passed: compete as a normal job
  return r.active;
}

std::uint32_t ResourceManager::available_for(const RmJob& job) const {
  if (job.spec.reservation != kNoReservation) {
    const Reservation& r = reservations_[job.spec.reservation];
    if (r.active) return r.remaining;  // granted out of the hold
  }
  auto free = static_cast<std::uint32_t>(alloc_.free_count());
  const double end = now_s() + planning_estimate(job.spec);
  for (const Reservation& r : reservations_) {
    if (r.active || r.expired) continue;
    if (r.start >= end) continue;  // the job vacates before the window
    free -= std::min(free, r.width);
  }
  return free;
}

void ResourceManager::start_job(RmJob& job, bool via_backfill) {
  const std::uint32_t width = job.spec.width;
  if (job.spec.reservation != kNoReservation &&
      reservations_[job.spec.reservation].active) {
    // Grant out of the reservation hold: release it, place the job (the
    // just-freed nodes are available again), re-hold the rest.
    Reservation& r = reservations_[job.spec.reservation];
    if (!r.hold.nodes.empty()) {
      alloc_.release(r.hold);
      r.hold.clear();
    }
    POLARIS_CHECK(r.remaining >= width);
    r.remaining -= width;
    const bool ok = alloc_.allocate(width, job.slot, job.alloc);
    POLARIS_CHECK(ok);
    r.remaining = std::min(
        r.remaining, static_cast<std::uint32_t>(alloc_.free_count()));
    if (r.remaining > 0) {
      alloc_.allocate(r.remaining, kResvTagBase + r.index, r.hold);
    }
  } else {
    const bool ok = alloc_.allocate(width, job.slot, job.alloc);
    POLARIS_CHECK(ok);
  }

  job.state = JobState::kRunning;
  job.start = now_s();
  job.planned_end = job.start + planning_estimate(job.spec);
  timeline_.add(job.planned_end, width, job.slot);
  job.completion = engine_->schedule_raw_after(
      des::from_seconds(job.spec.runtime), &completion_cb, &job);
  acct_.on_start(job.spec.id, job.start);
  ++started_;
  ++running_count_;
  if (via_backfill) ++backfilled_;
  if (c_started_) c_started_->add();
  if (via_backfill && c_backfilled_) c_backfilled_->add();
  if (h_wait_) {
    // Sim-seconds -> integer microseconds for the log-bucketed histogram.
    h_wait_->record(static_cast<std::uint64_t>(
        (job.start - job.spec.submit) * 1e6));
  }
}

void ResourceManager::completion_cb(void* ctx) {
  RmJob& job = *static_cast<RmJob*>(ctx);
  job.rm->finish_job(job);
}

void ResourceManager::finish_job(RmJob& job) {
  const double finish = now_s();
  timeline_.remove(job.slot, job.planned_end);
  alloc_.release(job.alloc);
  job.alloc.clear();
  job.state = JobState::kCompleted;
  acct_.on_complete(job.spec.id, finish);
  ++completed_;
  --running_count_;
  last_finish_ = std::max(last_finish_, finish);
  if (have_track_) {
    const des::SimTime start_tick = des::from_seconds(job.start);
    tracer_->complete_span(track_, "job " + std::to_string(job.spec.id), "rm",
                           start_tick, engine_->now() - start_tick);
  }
  run_queue();
}

void ResourceManager::requeue_job(RmJob& job, bool preempted) {
  POLARIS_CHECK(job.state == JobState::kRunning);
  engine_->cancel(job.completion);
  timeline_.remove(job.slot, job.planned_end);
  alloc_.release(job.alloc);
  job.alloc.clear();
  acct_.on_requeue(job.spec.id, now_s());
  job.state = JobState::kPending;
  job.start = -1.0;
  --running_count_;
  if (preempted) {
    ++preemptions_;
    if (c_preemptions_) c_preemptions_->add();
  } else {
    ++requeues_;
    if (c_requeues_) c_requeues_->add();
  }
  if (have_track_) {
    tracer_->instant(track_,
                     (preempted ? "preempt job " : "requeue job ") +
                         std::to_string(job.spec.id),
                     "rm");
  }
  // Front of its tier: a victim resumes before peers that never ran.
  enqueue(job, /*front=*/true);
}

void ResourceManager::run_queue() {
  if (in_run_queue_) return;
  in_run_queue_ = true;
  ++decision_passes_;
  quick_start();
  if (cfg_.preemption && queue_mask_ != 0) {
    try_preempt_for(*queue_head());
    quick_start();
  }
  maybe_backfill();
  update_gauges();
  in_run_queue_ = false;
}

void ResourceManager::quick_start() {
  while (queue_mask_ != 0) {
    RmJob* j = queue_head();
    if (!reservation_admits(*j)) break;
    if (j->spec.width > available_for(*j)) break;
    dequeue(*j);
    start_job(*j, /*via_backfill=*/false);
  }
}

void ResourceManager::maybe_backfill() {
  if (!cfg_.backfill || queue_mask_ == 0) return;
  const des::SimTime interval = des::from_seconds(cfg_.backfill_interval);
  if (engine_->now() - last_backfill_tick_ >= interval) {
    backfill_cycle();
    return;
  }
  // Too soon: coalesce into one deferred cycle instead of rescanning the
  // queue on every event.
  if (!backfill_timer_set_) {
    backfill_timer_set_ = true;
    engine_->schedule_raw_at(last_backfill_tick_ + interval,
                             &backfill_timer_cb, this);
  }
}

void ResourceManager::backfill_timer_cb(void* ctx) {
  auto& rm = *static_cast<ResourceManager*>(ctx);
  rm.backfill_timer_set_ = false;
  rm.run_queue();
}

void ResourceManager::backfill_cycle() {
  ++backfill_cycles_;
  last_backfill_tick_ = engine_->now();
  if (queue_mask_ == 0) return;
  const double now = now_s();

  if (cfg_.conservative) {
    Profile prof(now, static_cast<double>(alloc_.free_count()),
                 timeline_.ends());
    const std::uint32_t head_slot = queue_head()->slot;
    std::uint32_t scanned = 0;
    for (int t = kMaxTiers - 1; t >= 0 && scanned < cfg_.backfill_depth;
         --t) {
      std::uint32_t s = head_[static_cast<std::size_t>(t)];
      while (s != kNilIndex && scanned < cfg_.backfill_depth) {
        RmJob& c = jobs_[s];
        const std::uint32_t nxt = c.next;
        ++scanned;
        const bool is_head = s == head_slot;
        if (reservation_admits(c)) {
          const double est = planning_estimate(c.spec);
          const double earliest = prof.reserve(c.spec.width, est);
          if (earliest <= now && c.spec.width <= available_for(c)) {
            dequeue(c);
            start_job(c, /*via_backfill=*/!is_head);
          }
        }
        s = nxt;
      }
    }
    return;
  }

  // EASY: protect only the head job — its shadow start must not move.
  RmJob* head = queue_head();
  const PlanningTimeline::Shadow shadow = timeline_.shadow_for(
      head->spec.width, static_cast<std::uint32_t>(alloc_.free_count()));
  std::uint32_t extra = shadow.extra;
  std::uint32_t scanned = 0;
  for (int t = kMaxTiers - 1; t >= 0 && scanned < cfg_.backfill_depth; --t) {
    std::uint32_t s = head_[t];
    while (s != kNilIndex && scanned < cfg_.backfill_depth) {
      RmJob& c = jobs_[s];
      const std::uint32_t nxt = c.next;
      if (&c != head) {
        ++scanned;
        if (reservation_admits(c) && c.spec.width <= available_for(c)) {
          const double est = planning_estimate(c.spec);
          const bool ends_before_shadow = now + est <= shadow.time;
          const bool fits_extra = c.spec.width <= extra;
          if (ends_before_shadow || fits_extra) {
            if (!ends_before_shadow) extra -= c.spec.width;
            dequeue(c);
            start_job(c, /*via_backfill=*/true);
          }
        }
      }
      s = nxt;
    }
  }
}

void ResourceManager::try_preempt_for(RmJob& head) {
  if (!reservation_admits(head)) return;
  const std::uint32_t need = head.spec.width;
  if (available_for(head) >= need) return;  // quick_start will take it
  if (head.tier < cfg_.preempt_gap) return;
  const std::uint32_t max_victim_tier = head.tier - cfg_.preempt_gap;

  // The timeline's entries are exactly the running set.
  struct Victim {
    std::uint32_t tier;
    double start;
    JobId id;
    std::uint32_t slot;
  };
  std::vector<Victim> victims;
  for (const PlanningTimeline::RunEnd& e : timeline_.ends()) {
    const RmJob& j = jobs_[e.slot];
    if (!j.spec.preemptible || j.tier > max_victim_tier) continue;
    victims.push_back({j.tier, j.start, j.spec.id, j.slot});
  }
  // Cheapest victims first: lowest tier, then shortest time invested.
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.tier != b.tier) return a.tier < b.tier;
              if (a.start != b.start) return a.start > b.start;
              return a.id > b.id;
            });
  std::uint32_t would_free = available_for(head);
  std::size_t take = 0;
  while (take < victims.size() && would_free < need) {
    would_free += jobs_[victims[take].slot].spec.width;
    ++take;
  }
  if (would_free < need) return;  // even evicting everyone eligible fails
  for (std::size_t i = 0; i < take; ++i) {
    requeue_job(jobs_[victims[i].slot], /*preempted=*/true);
  }
}

ReservationId ResourceManager::add_reservation(double start, double end,
                                               std::uint32_t width) {
  POLARIS_CHECK(end > start && width >= 1 &&
                width <= alloc_.node_count());
  const auto idx = static_cast<std::uint32_t>(reservations_.size());
  reservations_.emplace_back();
  Reservation& r = reservations_.back();
  r.start = start;
  r.end = end;
  r.width = width;
  r.remaining = 0;
  r.rm = this;
  r.index = idx;
  engine_->schedule_raw_at(
      std::max(engine_->now(), des::from_seconds(start)), &resv_start_cb, &r);
  engine_->schedule_raw_at(
      std::max(engine_->now(), des::from_seconds(end)), &resv_end_cb, &r);
  return idx;
}

void ResourceManager::resv_start_cb(void* ctx) {
  Reservation& r = *static_cast<Reservation*>(ctx);
  ResourceManager& rm = *r.rm;
  r.active = true;
  // Take the hold: whatever of the width is actually free (the admission
  // guard kept jobs that would overlap the window off these nodes).
  const auto take = std::min<std::uint32_t>(
      r.width, static_cast<std::uint32_t>(rm.alloc_.free_count()));
  r.remaining = take;
  if (take > 0) {
    rm.alloc_.allocate(take, kResvTagBase + r.index, r.hold);
  }
  for (const std::uint32_t slot : r.tagged) {
    RmJob& j = rm.jobs_[slot];
    if (j.state == JobState::kPending && j.queued) {
      rm.dequeue(j);
      j.tier = rm.boost_tier();
      rm.enqueue(j, /*front=*/false);
    }
  }
  r.tagged.clear();
  if (rm.have_track_) {
    rm.tracer_->instant(rm.track_,
                        "reservation " + std::to_string(r.index) + " open",
                        "rm");
  }
  rm.run_queue();
}

void ResourceManager::resv_end_cb(void* ctx) {
  Reservation& r = *static_cast<Reservation*>(ctx);
  ResourceManager& rm = *r.rm;
  r.active = false;
  r.expired = true;
  r.remaining = 0;
  if (!r.hold.nodes.empty()) {
    rm.alloc_.release(r.hold);
    r.hold.clear();
  }
  rm.run_queue();
}

void ResourceManager::on_fault(const fault::FaultEvent& ev) {
  switch (ev.kind) {
    case fault::FaultEvent::Kind::kNodeCrash:
      node_failed(ev.id);
      break;
    case fault::FaultEvent::Kind::kNodeRepair:
      node_repaired(ev.id);
      break;
    default:
      break;  // link faults reroute traffic; nodes stay schedulable
  }
}

void ResourceManager::node_failed(fabric::NodeId node) {
  POLARIS_CHECK(node < alloc_.node_count());
  if (alloc_.drained(node)) return;
  const std::uint32_t owner = alloc_.owner_of(node);
  alloc_.drain(node);
  if (owner == kNilIndex) {
    // idle node: just removed from the free pool
  } else if (owner >= kResvTagBase) {
    Reservation& r = reservations_[owner - kResvTagBase];
    if (r.remaining > 0) --r.remaining;
  } else {
    requeue_job(jobs_[owner], /*preempted=*/false);
  }
  run_queue();
}

void ResourceManager::node_repaired(fabric::NodeId node) {
  POLARIS_CHECK(node < alloc_.node_count());
  if (!alloc_.drained(node)) return;
  alloc_.undrain(node);
  run_queue();
}

void ResourceManager::attach_metrics(obs::MetricsRegistry& metrics) {
  g_queue_depth_ = &metrics.gauge("rm.queue_depth");
  g_running_ = &metrics.gauge("rm.running");
  g_nodes_free_ = &metrics.gauge("rm.nodes_free");
  g_nodes_drained_ = &metrics.gauge("rm.nodes_drained");
  c_started_ = &metrics.counter("rm.started");
  c_backfilled_ = &metrics.counter("rm.backfilled");
  c_preemptions_ = &metrics.counter("rm.preemptions");
  c_requeues_ = &metrics.counter("rm.requeues");
  h_wait_ = &metrics.log_histogram("rm.wait_time_us");
  update_gauges();
}

void ResourceManager::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  track_ = tracer.add_track("rm jobs", "rm");
  have_track_ = true;
}

void ResourceManager::update_gauges() {
  if (!g_queue_depth_) return;
  g_queue_depth_->set(static_cast<double>(pending_count_));
  g_running_->set(static_cast<double>(running_count_));
  g_nodes_free_->set(static_cast<double>(alloc_.free_count()));
  g_nodes_drained_->set(static_cast<double>(alloc_.drained_count()));
}

const Allocation* ResourceManager::allocation_of(JobId id) const {
  const std::uint32_t* slot = job_index_.find(id);
  if (!slot) return nullptr;
  const RmJob& j = jobs_[*slot];
  return j.state == JobState::kRunning ? &j.alloc : nullptr;
}

ResourceManager::Summary ResourceManager::summary() const {
  Summary s;
  s.backfilled = backfilled_;
  s.preemptions = preemptions_;
  s.requeues = requeues_;
  s.fragmented_allocs = alloc_.stats().fragmented;
  support::Summary waits;
  double slowdown_sum = 0.0;
  double node_seconds = 0.0;
  for (const JobRecord& r : acct_.query({})) {
    ++s.jobs;
    if (r.state != JobState::kCompleted) continue;
    ++s.completed;
    waits.add(r.start - r.submit);
    const double runtime = r.finish - r.start;
    slowdown_sum += (r.finish - r.submit) / std::max(runtime, 10.0);
    node_seconds += runtime * r.width;
    s.makespan = std::max(s.makespan, r.finish);
  }
  if (s.completed > 0) {
    s.mean_wait = waits.mean();
    s.p95_wait = waits.percentile(95.0);
    s.mean_bounded_slowdown =
        slowdown_sum / static_cast<double>(s.completed);
  }
  if (s.makespan > 0.0) {
    s.utilization =
        node_seconds / (static_cast<double>(alloc_.node_count()) * s.makespan);
  }
  return s;
}

}  // namespace polaris::rm
