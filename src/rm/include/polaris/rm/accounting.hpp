// Job accounting and fair-share usage tracking.
//
// Every job's lifecycle lands in a ledger of JobRecords — the queryable
// equivalent of a production resource manager's accounting database
// (sacct): submit/start/finish stamps, requeue count, node-seconds wasted
// to preemption or node failure, and final state.  The ledger is
// append-ordered by first submission and indexed by JobId through a
// FlatMap64, so recording is O(1) per event.
//
// Fair share follows the classic decayed-usage model: each user's (and
// account's) consumed node-seconds decay exponentially with a configured
// half-life, and the priority factor is 2^(-usage / (shares * mean)) —
// 1.0 for an idle user, 0.5 at exactly the fair allocation, approaching 0
// for hogs.  The scheduler folds the factor into queue tiers at
// submit/requeue time.
//
// Determinism: dump() emits records sorted by JobId with fixed formatting,
// and fingerprint() hashes that text, so two same-seed runs can assert
// byte-identical ledgers.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "polaris/rm/types.hpp"
#include "polaris/support/flat_map.hpp"

namespace polaris::rm {

struct JobRecord {
  JobId id = 0;
  UserId user = 0;
  AccountId account = 0;
  std::uint32_t width = 0;
  std::int32_t priority = 0;
  double submit = 0.0;
  double start = -1.0;   ///< most recent start; -1 while pending
  double finish = -1.0;  ///< -1 until completed/cancelled
  double wasted_node_seconds = 0.0;  ///< lost to preemption/node failure
  std::uint32_t requeues = 0;
  JobState state = JobState::kPending;

  double wait() const { return start >= 0.0 ? start - submit : -1.0; }
};

class AccountingStore {
 public:
  struct Config {
    double fairshare_halflife = 7 * 24 * 3600.0;  ///< seconds of sim time
  };

  AccountingStore() = default;
  explicit AccountingStore(Config cfg) : cfg_(cfg) {}

  // --- lifecycle recording (called by the resource manager) ---
  void on_submit(const JobSpec& spec);
  void on_start(JobId id, double at);
  /// Preemption or node-failure requeue: charges the partial run as waste.
  void on_requeue(JobId id, double at);
  void on_complete(JobId id, double at);
  void on_cancel(JobId id, double at);

  /// Default 1.0; higher shares tolerate more usage before losing factor.
  void set_user_shares(UserId user, double shares);

  /// Decayed-usage priority factor in (0, 1]; 1.0 for an unused identity.
  double user_factor(UserId user, double now) const;
  double account_factor(AccountId account, double now) const;

  /// Decayed node-seconds charged to a user so far.
  double user_usage(UserId user, double now) const;

  // --- queries (sacct-alike) ---
  struct Query {
    UserId user = kNilIndex;        ///< kNilIndex = any
    AccountId account = kNilIndex;  ///< kNilIndex = any
    JobState state = JobState::kCancelled;
    bool filter_state = false;
  };
  /// Matching records sorted by JobId.
  std::vector<JobRecord> query(const Query& q) const;
  const JobRecord* find(JobId id) const;
  std::size_t size() const { return records_.size(); }

  struct Totals {
    std::uint64_t jobs = 0;
    std::uint64_t completed = 0;
    std::uint64_t requeues = 0;
    double node_seconds = 0.0;
    double wasted_node_seconds = 0.0;
  };
  Totals totals() const;

  /// Deterministic text form: one line per record, sorted by JobId.
  void dump(std::ostream& os) const;
  std::string dump() const;
  /// FNV-1a hash of dump() — the byte-identity check for same-seed runs.
  std::uint64_t fingerprint() const;

 private:
  struct Usage {
    double usage = 0.0;       ///< decayed node-seconds
    double last_decay = 0.0;  ///< sim time usage was last brought current
    double shares = 1.0;
  };

  JobRecord* record_for(JobId id);
  void charge(UserId user, AccountId account, double node_seconds,
              double now);
  static double decayed(const Usage& u, double now, double halflife);
  double mean_usage(double now) const;

  Config cfg_;
  std::deque<JobRecord> records_;
  support::FlatMap64<std::uint32_t> index_;  ///< JobId -> records_ pos
  support::FlatMap64<Usage> users_;
  support::FlatMap64<Usage> accounts_;
  double total_usage_ = 0.0;        ///< decayed, brought current lazily
  double total_last_decay_ = 0.0;
};

}  // namespace polaris::rm
