// Incrementally-maintained planning timeline.
//
// The scheduler's forward-looking decisions (EASY head reservations,
// conservative profiles) need the running jobs ordered by *planned*
// completion — start + the user's wall-time estimate.  The legacy
// sched::Simulator rebuilt that order with a copy-and-sort of the whole
// running set on every decision; here the order is maintained
// incrementally: one ordered insert when a job starts, one targeted erase
// when it completes.  The vector is bounded by how many jobs fit on the
// machine at once (not by queue depth), so both operations are cheap and
// the per-event cost stays flat as the queue grows to 10^6 jobs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace polaris::rm {

class PlanningTimeline {
 public:
  struct RunEnd {
    double end = 0.0;  ///< planned completion (start + estimate), seconds
    std::uint32_t width = 0;
    std::uint32_t slot = 0;  ///< job slab slot; tie-break and removal key
  };

  /// Records a started job's planned completion.
  void add(double end, std::uint32_t width, std::uint32_t slot) {
    const RunEnd e{end, width, slot};
    auto it = std::upper_bound(
        ends_.begin(), ends_.end(), e, [](const RunEnd& a, const RunEnd& b) {
          return a.end != b.end ? a.end < b.end : a.slot < b.slot;
        });
    ends_.insert(it, e);
  }

  /// Removes a job's entry; `end` must be the value passed to add().
  void remove(std::uint32_t slot, double end) {
    auto it = std::lower_bound(
        ends_.begin(), ends_.end(), end,
        [](const RunEnd& a, double t) { return a.end < t; });
    while (it != ends_.end() && it->slot != slot) ++it;
    if (it != ends_.end()) ends_.erase(it);
  }

  void clear() { ends_.clear(); }
  std::size_t size() const { return ends_.size(); }

  struct Shadow {
    /// Earliest time `width` nodes are simultaneously free: < 0 means
    /// startable now, +inf means the width never fits (wider than the
    /// machine).
    double time = 0.0;
    /// Nodes free beyond `width` at that moment — the budget a backfill
    /// candidate may hold *through* the shadow without delaying the head
    /// job.
    std::uint32_t extra = 0;
  };

  /// EASY head-reservation query given `free_now` currently free nodes.
  Shadow shadow_for(std::uint32_t width, std::uint32_t free_now) const {
    std::uint32_t free = free_now;
    if (free >= width) return {-1.0, free - width};
    for (const RunEnd& e : ends_) {
      free += e.width;
      if (free >= width) return {e.end, free - width};
    }
    return {std::numeric_limits<double>::infinity(), 0};
  }

  /// Planned completions in ascending order (seed for conservative
  /// profiles).
  const std::vector<RunEnd>& ends() const { return ends_; }

 private:
  std::vector<RunEnd> ends_;
};

}  // namespace polaris::rm
