// Core types of the polaris::rm resource manager.
//
// A JobSpec is what a user submits: width, wall-time request, identity
// (user/account) and a base priority.  The manager turns it into a live
// job with a state machine:
//
//   kPending --start--> kRunning --finish--> kCompleted
//      ^                   |  |
//      |<---- preempt -----+  +---- node crash ----> requeued (kPending,
//      |                                             requeues+1)
//      +<--------------------------------------------+
//
// Preemption and node-failure requeue are restart semantics: the job loses
// its progress (accounted as wasted node-seconds) and runs its full
// runtime again on the next allocation — the conservative model for
// applications without checkpointing (polaris::fault::CheckpointModel
// covers the other regime).
#pragma once

#include <cstddef>
#include <cstdint>

namespace polaris::rm {

using JobId = std::uint64_t;
using UserId = std::uint32_t;
using AccountId = std::uint32_t;
using ReservationId = std::uint32_t;

inline constexpr std::uint32_t kNilIndex = 0xffff'ffffu;
inline constexpr ReservationId kNoReservation = 0xffff'ffffu;

enum class JobState : std::uint8_t {
  kPending,    ///< queued (includes requeued-after-failure)
  kRunning,
  kCompleted,
  kCancelled,
};

const char* to_string(JobState s);

/// A rigid parallel job as submitted.  `estimate` is the user wall-time
/// request the scheduler plans with; `runtime` is what actually happens.
struct JobSpec {
  JobId id = 0;
  UserId user = 0;
  AccountId account = 0;
  double submit = 0.0;    ///< arrival time, seconds
  double runtime = 0.0;   ///< actual execution time, seconds
  double estimate = 0.0;  ///< requested wall time, seconds (0 = runtime)
  std::uint32_t width = 1;
  std::int32_t priority = 0;  ///< base priority; higher schedules first
  bool preemptible = true;
  ReservationId reservation = kNoReservation;  ///< run inside this window
};

}  // namespace polaris::rm
