// polaris::rm — a live, topology-aware resource manager.
//
// The ResourceManager is a DES *service*: submissions, completions,
// reservations, backfill cycles and fault notifications are all engine
// events, so scheduling interleaves with everything else in the simulated
// machine (fabric traffic, heartbeats, fault injection) instead of running
// in the detached analytic loop of sched::Simulator.  The architecture is
// SLURM-shaped:
//
//  - Placement: jobs receive contiguous blocks of the real fabric from a
//    buddy BlockAllocator over a locality-preserving linearization
//    (sub-bricks of a torus, subtree runs of a fat tree).
//  - Queueing: up to 64 priority tiers, each an intrusive FIFO over the
//    job slab, with a tier-occupancy bitmask — push, pop and
//    highest-nonempty are O(1).  Fair share (decayed per-user usage from
//    the AccountingStore) maps into sub-tiers below the base priority.
//  - Starting: an O(1)-per-job quick-start pass pops queue heads while
//    they fit; a *rate-limited* backfill cycle (EASY shadow from the
//    incrementally-maintained PlanningTimeline, or conservative with a
//    cycle-local profile) handles out-of-order starts.  Rate limiting is
//    what keeps the per-job-event decision cost flat at 10^6 queued jobs:
//    dirty events within `backfill_interval` of the last cycle coalesce
//    into one deferred timer instead of each rescanning the queue.
//  - Preemption: a high-tier head job may evict lower-tier preemptible
//    running jobs (restart semantics: the partial run is accounted as
//    wasted node-seconds and the victim requeues at the front of its
//    tier).
//  - Reservations: advance windows [start, end) of guaranteed width.
//    Before the window opens, jobs whose planned end crosses the start
//    must leave the width free; at open the manager takes a hold on the
//    nodes and releases them only to jobs tagged with the reservation.
//  - Faults: as a fault::FaultListener, a node crash kills the owning
//    job (requeue, front of tier), drains the node, and triggers
//    replacement allocation; repair undrains and wakes the queue.
//
// With RmConfig::legacy_fcfs() (single tier, flat order, no backfill) the
// manager reproduces sched::Simulator's FCFS schedule job-for-job — the
// equivalence is pinned by tests/rm.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/rm/accounting.hpp"
#include "polaris/rm/block_allocator.hpp"
#include "polaris/rm/timeline.hpp"
#include "polaris/rm/types.hpp"

namespace polaris::rm {

struct RmConfig {
  enum class Placement {
    kFlat,      ///< identity node order (topology-blind)
    kTopology,  ///< locality-preserving linearization
  };
  Placement placement = Placement::kTopology;

  bool backfill = true;
  /// false = EASY (protect the head job only); true = conservative (every
  /// scanned job gets a planned start no later pass may delay).
  bool conservative = false;
  /// Queue prefix scanned per backfill cycle (SLURM bf_max_job_test).
  std::uint32_t backfill_depth = 256;
  /// Minimum sim-seconds between backfill cycles; dirty events in between
  /// coalesce into one deferred cycle (SLURM bf_interval).
  double backfill_interval = 30.0;

  bool preemption = false;
  /// A head job preempts only victims at least this many tiers below it.
  std::uint32_t preempt_gap = 1;

  bool fair_share = false;
  /// Base-priority tiers (spec.priority clamped to [0, priority_tiers)).
  std::uint32_t priority_tiers = 8;
  /// Fair-share sub-tiers per priority tier (1 disables the split).
  std::uint32_t fairshare_tiers = 4;
  double fairshare_halflife = 7 * 24 * 3600.0;

  /// The configuration under which the manager reproduces the legacy
  /// sched::Simulator FCFS schedule job-for-job.
  static RmConfig legacy_fcfs() {
    RmConfig c;
    c.placement = Placement::kFlat;
    c.backfill = false;
    c.preemption = false;
    c.fair_share = false;
    c.priority_tiers = 1;
    c.fairshare_tiers = 1;
    return c;
  }
};

class ResourceManager final : public fault::FaultListener {
 public:
  /// Machine of `nodes` hosts with no geometry (placement forced flat).
  ResourceManager(des::Engine& engine, std::size_t nodes, RmConfig cfg = {});
  /// Machine shaped like `topo` (which must outlive the manager).
  ResourceManager(des::Engine& engine, const fabric::Topology& topo,
                  RmConfig cfg = {});

  /// Schedules the job's arrival at spec.submit.  Call before or during
  /// engine.run(); ids must be unique.
  void submit(const JobSpec& spec);

  /// Advance reservation of `width` nodes over [start, end) sim-seconds.
  /// Jobs carrying the returned id in JobSpec::reservation run inside the
  /// window; everyone else is kept from colliding with it.
  ReservationId add_reservation(double start, double end,
                                std::uint32_t width);

  // --- fault integration ---
  /// Subscribes to the injector; crashes/repairs then flow through
  /// on_fault automatically.
  void attach_injector(fault::Injector& injector) {
    injector.add_listener(this);
  }
  void on_fault(const fault::FaultEvent& ev) override;
  /// Direct node-state API for drivers without an Injector (e.g. acting
  /// on heartbeat suspicion).
  void node_failed(fabric::NodeId node);
  void node_repaired(fabric::NodeId node);

  void attach_metrics(obs::MetricsRegistry& metrics);
  void attach_tracer(obs::Tracer& tracer);

  const AccountingStore& accounting() const { return acct_; }
  AccountingStore& accounting() { return acct_; }
  const BlockAllocator& allocator() const { return alloc_; }

  /// Nodes currently granted to a running job; nullptr otherwise.
  const Allocation* allocation_of(JobId id) const;

  std::size_t queue_depth() const { return pending_count_; }
  std::size_t running_jobs() const { return running_count_; }

  struct Summary {
    std::uint64_t jobs = 0;
    std::uint64_t completed = 0;
    std::uint64_t backfilled = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t requeues = 0;
    std::uint64_t fragmented_allocs = 0;
    double makespan = 0.0;
    double utilization = 0.0;
    double mean_wait = 0.0;
    double p95_wait = 0.0;
    double mean_bounded_slowdown = 0.0;
  };
  /// Aggregates over completed jobs (call after engine.run()).
  Summary summary() const;

  /// Scheduling passes (quick-start sweeps + backfill cycles) executed —
  /// the denominator for amortized decision-cost measurements.
  std::uint64_t decision_passes() const { return decision_passes_; }
  std::uint64_t backfill_cycles() const { return backfill_cycles_; }

 private:
  struct RmJob {
    JobSpec spec;
    JobState state = JobState::kPending;
    std::uint32_t slot = 0;  ///< index in jobs_ (stable: deque slab)
    std::uint32_t tier = 0;
    std::uint32_t prev = kNilIndex;  ///< intrusive tier-FIFO links
    std::uint32_t next = kNilIndex;
    bool queued = false;
    double start = -1.0;
    double planned_end = 0.0;  ///< timeline removal key
    des::EventId completion{};
    Allocation alloc;
    ResourceManager* rm = nullptr;  ///< raw-callback context backpointer
  };

  struct Reservation {
    double start = 0.0;
    double end = 0.0;
    std::uint32_t width = 0;
    std::uint32_t remaining = 0;  ///< width not yet granted to tagged jobs
    Allocation hold;
    bool active = false;
    bool expired = false;
    ResourceManager* rm = nullptr;
    std::uint32_t index = 0;
    /// Pending tagged jobs, re-tiered to boost_tier() when the window opens.
    std::vector<std::uint32_t> tagged;
  };

  static constexpr std::uint32_t kMaxTiers = 64;
  /// Owner tags >= this mark reservation holds rather than jobs.
  static constexpr std::uint32_t kResvTagBase = 0x8000'0000u;

  static void arrival_cb(void* ctx);
  static void completion_cb(void* ctx);
  static void backfill_timer_cb(void* ctx);
  static void resv_start_cb(void* ctx);
  static void resv_end_cb(void* ctx);

  double now_s() const;
  double planning_estimate(const JobSpec& spec) const {
    return spec.estimate > 0.0 ? spec.estimate : spec.runtime;
  }
  std::uint32_t compute_tier(const JobSpec& spec) const;
  /// Tier above every normal one, for jobs whose reservation window is open.
  std::uint32_t boost_tier() const {
    const std::uint32_t p = std::max(1u, cfg_.priority_tiers);
    const std::uint32_t f =
        cfg_.fair_share ? std::max(1u, cfg_.fairshare_tiers) : 1u;
    return p * f;
  }

  void enqueue(RmJob& job, bool front);
  void dequeue(RmJob& job);
  RmJob* queue_head();

  /// Free nodes a pending job may actually take now, after withholding
  /// capacity for reservations its planned run would collide with.
  std::uint32_t available_for(const RmJob& job) const;
  bool reservation_admits(const RmJob& job) const;

  void start_job(RmJob& job, bool via_backfill);
  void finish_job(RmJob& job);
  void requeue_job(RmJob& job, bool preempted);

  void run_queue();
  void quick_start();
  void maybe_backfill();
  void backfill_cycle();
  void try_preempt_for(RmJob& head);

  void update_gauges();

  des::Engine* engine_;
  RmConfig cfg_;
  BlockAllocator alloc_;
  PlanningTimeline timeline_;
  AccountingStore acct_;

  std::deque<RmJob> jobs_;
  support::FlatMap64<std::uint32_t> job_index_;  ///< JobId -> slot
  std::array<std::uint32_t, kMaxTiers> head_;
  std::array<std::uint32_t, kMaxTiers> tail_;
  std::uint64_t queue_mask_ = 0;
  std::size_t pending_count_ = 0;
  std::size_t running_count_ = 0;

  std::deque<Reservation> reservations_;

  /// Tick of the last backfill cycle (integer ticks: the rate-limit
  /// comparison and the deferred-timer target must agree exactly, which
  /// double seconds cannot guarantee).
  des::SimTime last_backfill_tick_ = std::numeric_limits<des::SimTime>::min() / 2;
  bool backfill_timer_set_ = false;
  bool in_run_queue_ = false;

  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t backfilled_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t decision_passes_ = 0;
  std::uint64_t backfill_cycles_ = 0;
  double last_finish_ = 0.0;

  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_running_ = nullptr;
  obs::Gauge* g_nodes_free_ = nullptr;
  obs::Gauge* g_nodes_drained_ = nullptr;
  obs::Counter* c_started_ = nullptr;
  obs::Counter* c_backfilled_ = nullptr;
  obs::Counter* c_preemptions_ = nullptr;
  obs::Counter* c_requeues_ = nullptr;
  obs::LogHistogram* h_wait_ = nullptr;  ///< queue wait, microseconds
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  bool have_track_ = false;
};

}  // namespace polaris::rm
