// Topology-aware contiguous node allocation.
//
// The allocator hands jobs blocks of the simulated fabric that are
// *compact in the machine's real geometry* — sub-bricks of a torus,
// edge-switch/pod subtrees of a fat tree — so a job's traffic stays on
// short private routes instead of crossing strangers' links (the
// BlueGene-style block allocation production resource managers use).
//
// Mechanics: a binary buddy allocator over a locality-preserving
// linearization of the hosts.
//
//  - Linearization: tori are ordered by recursive bisection (split the
//    longest extent in half, recurse), so every aligned power-of-two range
//    of the linear order is a compact sub-brick.  Fat trees and crossbars
//    keep their natural NodeId order, which is already the subtree
//    hierarchy (hosts under one edge switch are consecutive, pods are
//    consecutive runs of edge groups).
//  - Free blocks are indexed per power-of-two size class, with a
//    FlatMap64 position index keyed by (level, start) so a *specific*
//    block — a buddy to coalesce with, a crashed node to carve out — is
//    found and removed in O(1) without scanning.  A per-level occupancy
//    bitmask finds the best size class with one ctz.
//  - allocate() prefers one aligned block covering the whole request
//    (single contiguous run; the tail beyond the job's width is split
//    back into free buddies), and otherwise falls back to a
//    largest-block-first decomposition, so allocation *never fails while
//    enough non-drained nodes are free* — contiguity degrades before
//    admission does.
//
// Every operation is O(log nodes) worst case (buddy split/merge chains)
// and touches no allocator in steady state beyond vector growth, which is
// what keeps the resource manager's per-job-event decision cost flat from
// 10^4 to 10^6 queued jobs.
//
// Faulted nodes: drain() removes a node from service (carving it out of
// its free block if idle); release() of a job holding drained nodes
// withholds exactly those nodes; undrain() returns a node to the free
// pool with normal buddy coalescing.
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/fabric/topology.hpp"
#include "polaris/rm/types.hpp"
#include "polaris/support/flat_map.hpp"

namespace polaris::rm {

/// Host-order permutation the buddy structure runs over.
struct LinearOrder {
  std::vector<fabric::NodeId> to_node;   ///< linear index -> host
  std::vector<std::uint32_t> to_linear;  ///< host -> linear index

  std::size_t size() const { return to_node.size(); }

  static LinearOrder identity(std::size_t nodes);
  /// Recursive-bisection order for grid topologies (Topology::dims()),
  /// natural order otherwise.
  static LinearOrder for_topology(const fabric::Topology& topo);
};

/// The nodes granted to one job: maximal runs in linear order, plus the
/// expanded host list (linear order, so neighbouring ranks land on
/// neighbouring hosts when the caller maps rank i -> nodes[i]).
struct Allocation {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;  ///< (start, len)
  std::vector<fabric::NodeId> nodes;

  std::size_t fragments() const { return runs.size(); }
  bool contiguous() const { return runs.size() <= 1; }
  void clear() {
    runs.clear();
    nodes.clear();
  }
};

class BlockAllocator {
 public:
  /// Identity linear order over `nodes` hosts (topology-blind).
  explicit BlockAllocator(std::size_t nodes);
  /// Locality-preserving order for `topo`'s geometry.
  explicit BlockAllocator(const fabric::Topology& topo);

  std::size_t node_count() const { return order_.size(); }
  /// Nodes currently available to allocate (excludes drained).
  std::size_t free_count() const { return free_count_; }
  std::size_t drained_count() const { return drained_count_; }

  /// Allocates `width` nodes for `owner` (an opaque job tag != kNilIndex).
  /// Returns false iff fewer than `width` non-drained nodes are free.
  /// On success `out` holds the runs/hosts; contiguity is best-effort
  /// (single run whenever any sufficiently large aligned block is free).
  bool allocate(std::uint32_t width, std::uint32_t owner, Allocation& out);

  /// Returns an allocation's nodes to the free pool (drained nodes are
  /// withheld until undrain()).  The allocation must be live.
  void release(const Allocation& a);

  /// Takes a node out of service.  Idle nodes leave the free pool at
  /// once; nodes owned by a running job are withheld when that job's
  /// allocation is released.  No-op if already drained.
  void drain(fabric::NodeId node);
  /// Returns a drained node to service (no-op if not drained).
  void undrain(fabric::NodeId node);
  bool drained(fabric::NodeId node) const {
    return drained_[order_.to_linear[node]] != 0;
  }

  /// Owner tag of the job holding `node`, or kNilIndex if unowned.
  std::uint32_t owner_of(fabric::NodeId node) const {
    return owner_[order_.to_linear[node]];
  }
  bool node_free(fabric::NodeId node) const {
    return owner_of(node) == kNilIndex && !drained(node);
  }

  const LinearOrder& order() const { return order_; }

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t releases = 0;
    std::uint64_t splits = 0;       ///< buddy splits
    std::uint64_t merges = 0;       ///< buddy coalesces
    std::uint64_t fragmented = 0;   ///< allocations needing > 1 run
  };
  const Stats& stats() const { return stats_; }

  /// Debug invariant check (O(nodes)): free-list totals match
  /// free_count(), no block overlaps an owned or drained slot.  Throws on
  /// violation.  Test hook, not a hot-path call.
  void check_invariants() const;

 private:
  static constexpr std::uint64_t pack(std::uint32_t level,
                                      std::uint32_t start) {
    return (static_cast<std::uint64_t>(level) << 32) | start;
  }

  void init(LinearOrder order);
  void push_free(std::uint32_t level, std::uint32_t start);
  void remove_free(std::uint32_t level, std::uint32_t start);
  /// Pops one block at exactly `from_level` and splits it down to `level`,
  /// freeing the upper halves.  Returns the block start.
  std::uint32_t take_block(std::uint32_t from_level, std::uint32_t level);
  /// Frees [start, start+len) by maximal-aligned decomposition with buddy
  /// coalescing.  Caller guarantees no slot is owned or drained.
  void free_range(std::uint32_t start, std::uint32_t len);
  void claim_range(std::uint32_t start, std::uint32_t len,
                   std::uint32_t owner, Allocation& out);

  LinearOrder order_;
  std::uint32_t max_level_ = 0;
  std::vector<std::vector<std::uint32_t>> free_blocks_;  ///< per level
  support::FlatMap64<std::uint32_t> free_pos_;  ///< (level,start) -> index
  std::uint64_t level_mask_ = 0;                ///< bit per nonempty level
  std::vector<std::uint32_t> owner_;            ///< per linear slot
  std::vector<std::uint8_t> drained_;           ///< per linear slot
  std::size_t free_count_ = 0;
  std::size_t drained_count_ = 0;
  Stats stats_;
};

}  // namespace polaris::rm
