#include "polaris/rm/accounting.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "polaris/support/check.hpp"

namespace polaris::rm {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "?";
}

JobRecord* AccountingStore::record_for(JobId id) {
  std::uint32_t* pos = index_.find(id);
  POLARIS_CHECK_MSG(pos != nullptr, "accounting: unknown job id");
  return &records_[*pos];
}

void AccountingStore::on_submit(const JobSpec& spec) {
  POLARIS_CHECK_MSG(index_.find(spec.id) == nullptr,
                    "accounting: duplicate job id");
  index_[spec.id] = static_cast<std::uint32_t>(records_.size());
  JobRecord r;
  r.id = spec.id;
  r.user = spec.user;
  r.account = spec.account;
  r.width = spec.width;
  r.priority = spec.priority;
  r.submit = spec.submit;
  records_.push_back(r);
}

void AccountingStore::on_start(JobId id, double at) {
  JobRecord* r = record_for(id);
  r->start = at;
  r->state = JobState::kRunning;
}

void AccountingStore::on_requeue(JobId id, double at) {
  JobRecord* r = record_for(id);
  POLARIS_CHECK(r->state == JobState::kRunning && r->start >= 0.0);
  const double wasted = (at - r->start) * r->width;
  r->wasted_node_seconds += wasted;
  // The aborted run still consumed the machine: charge it.
  charge(r->user, r->account, wasted, at);
  r->start = -1.0;
  r->state = JobState::kPending;
  ++r->requeues;
}

void AccountingStore::on_complete(JobId id, double at) {
  JobRecord* r = record_for(id);
  POLARIS_CHECK(r->state == JobState::kRunning && r->start >= 0.0);
  r->finish = at;
  r->state = JobState::kCompleted;
  charge(r->user, r->account, (at - r->start) * r->width, at);
}

void AccountingStore::on_cancel(JobId id, double at) {
  JobRecord* r = record_for(id);
  r->finish = at;
  r->state = JobState::kCancelled;
}

void AccountingStore::set_user_shares(UserId user, double shares) {
  POLARIS_CHECK(shares > 0.0);
  users_[user].shares = shares;
}

double AccountingStore::decayed(const Usage& u, double now, double halflife) {
  if (u.usage == 0.0 || now <= u.last_decay) return u.usage;
  return u.usage * std::exp2(-(now - u.last_decay) / halflife);
}

void AccountingStore::charge(UserId user, AccountId account,
                             double node_seconds, double now) {
  if (node_seconds <= 0.0) return;
  for (Usage* u : {&users_[user], &accounts_[account]}) {
    u->usage = decayed(*u, now, cfg_.fairshare_halflife) + node_seconds;
    u->last_decay = now;
  }
  total_usage_ =
      decayed({total_usage_, total_last_decay_, 1.0}, now,
              cfg_.fairshare_halflife) +
      node_seconds;
  total_last_decay_ = now;
}

double AccountingStore::mean_usage(double now) const {
  const std::size_t n = std::max<std::size_t>(users_.size(), 1);
  return decayed({total_usage_, total_last_decay_, 1.0}, now,
                 cfg_.fairshare_halflife) /
         static_cast<double>(n);
}

double AccountingStore::user_usage(UserId user, double now) const {
  const Usage* u = users_.find(user);
  return u ? decayed(*u, now, cfg_.fairshare_halflife) : 0.0;
}

double AccountingStore::user_factor(UserId user, double now) const {
  const Usage* u = users_.find(user);
  if (!u) return 1.0;
  const double usage = decayed(*u, now, cfg_.fairshare_halflife);
  const double fair = u->shares * std::max(mean_usage(now), 1e-9);
  return std::exp2(-usage / fair);
}

double AccountingStore::account_factor(AccountId account, double now) const {
  const Usage* u = accounts_.find(account);
  if (!u) return 1.0;
  const double usage = decayed(*u, now, cfg_.fairshare_halflife);
  const double fair = u->shares * std::max(mean_usage(now), 1e-9);
  return std::exp2(-usage / fair);
}

std::vector<JobRecord> AccountingStore::query(const Query& q) const {
  std::vector<JobRecord> out;
  for (const JobRecord& r : records_) {
    if (q.user != kNilIndex && r.user != q.user) continue;
    if (q.account != kNilIndex && r.account != q.account) continue;
    if (q.filter_state && r.state != q.state) continue;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  return out;
}

const JobRecord* AccountingStore::find(JobId id) const {
  const std::uint32_t* pos = index_.find(id);
  return pos ? &records_[*pos] : nullptr;
}

AccountingStore::Totals AccountingStore::totals() const {
  Totals t;
  for (const JobRecord& r : records_) {
    ++t.jobs;
    t.requeues += r.requeues;
    t.wasted_node_seconds += r.wasted_node_seconds;
    if (r.state == JobState::kCompleted) {
      ++t.completed;
      t.node_seconds += (r.finish - r.start) * r.width;
    }
  }
  return t;
}

void AccountingStore::dump(std::ostream& os) const {
  std::vector<const JobRecord*> sorted;
  sorted.reserve(records_.size());
  for (const JobRecord& r : records_) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const JobRecord* a, const JobRecord* b) { return a->id < b->id; });
  os.precision(12);
  for (const JobRecord* r : sorted) {
    os << r->id << ' ' << r->user << ' ' << r->account << ' ' << r->width
       << ' ' << r->priority << ' ' << r->submit << ' ' << r->start << ' '
       << r->finish << ' ' << r->requeues << ' ' << r->wasted_node_seconds
       << ' ' << to_string(r->state) << '\n';
  }
}

std::string AccountingStore::dump() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

std::uint64_t AccountingStore::fingerprint() const {
  const std::string text = dump();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace polaris::rm
