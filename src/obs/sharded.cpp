#include "polaris/obs/sharded.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::obs {

ShardedRegistry::ShardedRegistry(std::size_t shards)
    : shards_(shards > 0 ? shards : 1) {}

ShardedRegistry::CounterId ShardedRegistry::counter(std::string_view name) {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return CounterId{static_cast<std::uint32_t>(i)};
    }
  }
  counter_names_.emplace_back(name);
  for (Shard& s : shards_) s.counters_.push_back(0);
  return CounterId{static_cast<std::uint32_t>(counter_names_.size() - 1)};
}

ShardedRegistry::GaugeId ShardedRegistry::gauge_max(std::string_view name) {
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      return GaugeId{static_cast<std::uint32_t>(i)};
    }
  }
  gauge_names_.emplace_back(name);
  for (Shard& s : shards_) s.gauges_.push_back(0.0);
  return GaugeId{static_cast<std::uint32_t>(gauge_names_.size() - 1)};
}

ShardedRegistry::HistId ShardedRegistry::log_histogram(
    std::string_view name) {
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] == name) {
      return HistId{static_cast<std::uint32_t>(i)};
    }
  }
  hist_names_.emplace_back(name);
  for (Shard& s : shards_) s.hists_.emplace_back();
  return HistId{static_cast<std::uint32_t>(hist_names_.size() - 1)};
}

std::uint64_t ShardedRegistry::counter_value(CounterId id) const {
  POLARIS_CHECK(id.v < counter_names_.size());
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.counters_[id.v];
  return total;
}

double ShardedRegistry::gauge_max_value(GaugeId id) const {
  POLARIS_CHECK(id.v < gauge_names_.size());
  double max = 0.0;
  for (const Shard& s : shards_) max = std::max(max, s.gauges_[id.v]);
  return max;
}

LogHistogram ShardedRegistry::merged(HistId id) const {
  POLARIS_CHECK(id.v < hist_names_.size());
  std::vector<const LogHistogram*> parts;
  parts.reserve(shards_.size());
  for (const Shard& s : shards_) parts.push_back(&s.hists_[id.v]);
  return LogHistogram::merge(parts);
}

void ShardedRegistry::export_into(MetricsRegistry& reg) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    reg.counter(counter_names_[i])
        .add(counter_value(CounterId{static_cast<std::uint32_t>(i)}));
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    reg.gauge(gauge_names_[i])
        .observe_max(gauge_max_value(GaugeId{static_cast<std::uint32_t>(i)}));
  }
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    reg.log_histogram(hist_names_[i])
        .merge_from(merged(HistId{static_cast<std::uint32_t>(i)}));
  }
}

void ShardedRegistry::reset() {
  for (Shard& s : shards_) {
    std::fill(s.counters_.begin(), s.counters_.end(), std::uint64_t{0});
    std::fill(s.gauges_.begin(), s.gauges_.end(), 0.0);
    for (LogHistogram& h : s.hists_) h.reset();
  }
}

}  // namespace polaris::obs
