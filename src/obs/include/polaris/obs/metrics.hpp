// Metrics registry: named counters, gauges and histograms.
//
// Instrumented code holds a raw pointer to a metric object (obtained once
// from the registry) and updates it with one atomic op; a null pointer
// means "no observer attached" and costs one predictable branch.  Metric
// objects live as long as the registry, so cached pointers never dangle.
// Counters and gauges are lock-free; histograms take a short mutex because
// they retain samples for exact percentiles (cross-checked against
// support::Summary in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "polaris/support/stats.hpp"

namespace polaris::obs {

/// Monotonic event count.  add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, occupancy, temperature).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Retains the maximum of all observations (high-watermark gauge).
  void observe_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with exact percentiles.  record() appends under a
/// mutex; reads snapshot under the same mutex.  Intended for per-operation
/// latencies/sizes at experiment scale, not unbounded streams.
class Histogram {
 public:
  void record(double x) {
    const std::lock_guard<std::mutex> lock(mu_);
    summary_.add(x);
  }

  std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count();
  }
  double mean() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count() ? summary_.mean() : 0.0;
  }
  double min() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count() ? summary_.min() : 0.0;
  }
  double max() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count() ? summary_.max() : 0.0;
  }
  double sum() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count() ? summary_.sum() : 0.0;
  }
  /// Linear-interpolated percentile, p in [0, 100]; same definition as
  /// support::Summary::percentile.
  double percentile(double p) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return summary_.count() ? summary_.percentile(p) : 0.0;
  }

 private:
  mutable std::mutex mu_;
  support::Summary summary_;
};

/// Owner and name directory of all metrics.  Lookup is mutex-protected and
/// intended for attach time, not the hot path: fetch the metric once, keep
/// the reference.  Metrics are created on first lookup.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t size() const;

  /// Writes every metric as one "name kind value [stats]" line, sorted by
  /// name (stable across runs; greppable).
  void dump(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace polaris::obs
