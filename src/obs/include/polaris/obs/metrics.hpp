// Metrics registry: named counters, gauges and histograms.
//
// Instrumented code holds a raw pointer to a metric object (obtained once
// from the registry) and updates it with one atomic op; a null pointer
// means "no observer attached" and costs one predictable branch.  Metric
// objects live as long as the registry, so cached pointers never dangle.
// Counters and gauges are lock-free; Histogram takes a short mutex and
// bounds its memory with a reservoir (percentiles cross-checked against
// support::Summary in tests); LogHistogram is the single-writer hot-path
// alternative with no lock and no retained samples.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace polaris::obs {

/// Monotonic event count.  add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, occupancy, temperature).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Retains the maximum of all observations (high-watermark gauge).
  void observe_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with bounded memory.  record() appends under a
/// mutex; reads snapshot under the same mutex.  Up to `reservoir_cap`
/// samples are retained exactly (percentiles match support::Summary to the
/// bit); past the cap, reservoir sampling (Vitter's algorithm R, fixed-seed
/// xorshift so runs are deterministic) keeps a uniform subset for
/// percentile estimates while count/sum/min/max stay exact.  Intended for
/// attach-time/report paths, not the hot path — hot paths use LogHistogram.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoirCap = 16384;

  explicit Histogram(std::size_t reservoir_cap = kDefaultReservoirCap)
      : cap_(reservoir_cap > 0 ? reservoir_cap : 1) {}

  void record(double x) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += x;
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
    if (samples_.size() < cap_) {
      samples_.push_back(x);
      if (samples_.size() > 1) sorted_ = false;
    } else {
      // Replace a random slot with probability cap/count: every sample seen
      // so far is retained with equal probability.
      const std::uint64_t j = next_rand() % count_;
      if (j < cap_) {
        samples_[static_cast<std::size_t>(j)] = x;
        sorted_ = false;
      }
    }
  }

  std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(count_);
  }
  double mean() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_ ? exact_sum() / static_cast<double>(count_) : 0.0;
  }
  double min() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_ ? min_ : 0.0;
  }
  double max() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_ ? max_ : 0.0;
  }
  double sum() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_ ? exact_sum() : 0.0;
  }
  /// Linear-interpolated percentile, p in [0, 100]; same definition as
  /// support::Summary::percentile (exact below the reservoir cap, a
  /// uniform-subset estimate above it).
  double percentile(double p) const {
    const std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    if (samples_.size() == 1) return samples_[0];
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
  }
  /// Number of retained samples (== count() until the reservoir fills).
  std::size_t reservoir_size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }
  std::size_t reservoir_cap() const { return cap_; }

 private:
  /// Matches support::Summary::sum(): accumulate over the retained vector
  /// (bit-identical below the cap); past the cap the running total is the
  /// exact value.
  double exact_sum() const {
    if (count_ <= cap_) {
      double s = 0.0;
      for (const double x : samples_) s += x;
      return s;
    }
    return sum_;
  }
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::uint64_t next_rand() {
    // xorshift64: deterministic, never zero.
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }

  mutable std::mutex mu_;
  const std::size_t cap_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket log-linear histogram (HdrHistogram-style) for hot-path
/// integer samples: each power-of-two octave is split into 32 linear
/// sub-buckets, so any recorded value lands within 1/32 (~3%) of its
/// bucket's representative and record() is two shifts and an increment —
/// no allocation, no mutex, no retained samples.  The whole state is a
/// flat counts array, which makes per-shard instances trivially cheap to
/// merge at export time (merge_from is a vector add); that is why pdes
/// gives every shard its own registry and folds them after the run.
///
/// Concurrency contract: single writer.  Unlike Histogram, counters are
/// plain (non-atomic) — one owner thread records, readers look only after
/// the writer quiesces (end of run / after a barrier).  Copyable so merged
/// results can be moved into a combined report.
class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear buckets per octave.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  /// Exact buckets below kSub (block 0), then 32 per octave: the top
  /// octave (msb 63) lands in block 64 - kSubBits, so blocks run
  /// 0 .. 64 - kSubBits inclusive.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((64 - kSubBits + 1) * kSub);

  LogHistogram() : counts_(kBuckets, 0) {}

  void record(std::uint64_t v) {
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (v < min_) min_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return count_ != 0 ? max_ : 0; }
  std::uint64_t min() const { return count_ != 0 ? min_ : 0; }
  double mean() const {
    return count_ != 0 ? static_cast<double>(sum_) / count_ : 0.0;
  }

  /// Zeroes every bucket and accumulator so the instance can be reused
  /// (per-shard histograms between runs, ring reuse) without reallocating
  /// the counts array.
  void reset() {
    std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~std::uint64_t{0};
  }

  /// Bucket-add merge; the receiving histogram accumulates `other`'s
  /// samples at bucket resolution (exact counts, ~3% value quantization).
  void merge_from(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
      if (other.max_ > max_) max_ = other.max_;
      if (other.min_ < min_) min_ = other.min_;
    }
  }

  /// Combines per-shard (or per-frontend, per-thread, ...) histograms into
  /// one at export time: bucket-add over every part.  The canonical "sharded
  /// registries merged at export" path — callers should not hand-roll the
  /// merge_from loop.
  static LogHistogram merge(std::span<const LogHistogram* const> parts) {
    LogHistogram out;
    for (const LogHistogram* p : parts) out.merge_from(*p);
    return out;
  }

  /// Quantile estimate, q in [0, 1]: quantile(0.99) is p99.  Same
  /// estimator as percentile(), on the conventional unit scale.
  double quantile(double q) const { return percentile(q * 100.0); }

  /// Percentile estimate (p in [0, 100]): cumulative walk to the target
  /// rank, linear interpolation inside the landing bucket.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      const std::uint64_t next = seen + counts_[i];
      if (static_cast<double>(next) >= rank) {
        // counts_[i] > 0 here: empty buckets were skipped above.
        const double into = (rank - static_cast<double>(seen)) /
                            static_cast<double>(counts_[i]);
        return static_cast<double>(bucket_floor(i)) +
               into * static_cast<double>(bucket_width(i));
      }
      seen = next;
    }
    return static_cast<double>(max_);
  }

  /// Bucket mapping (exposed for tests).  Values < kSub map exactly;
  /// larger values index by (octave, top-5-bits-below-msb).
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(msb - kSubBits + 1) << kSubBits) + sub);
  }

  /// Smallest value mapping to bucket `i`.
  static std::uint64_t bucket_floor(std::size_t i) {
    if (i < kSub) return i;
    const std::uint64_t block = (i >> kSubBits) - 1;  // 0-based octave - 5
    const int msb = static_cast<int>(block) + kSubBits;
    const std::uint64_t sub = i & (kSub - 1);
    return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
  }

  /// Width (value span) of bucket `i`.
  static std::uint64_t bucket_width(std::size_t i) {
    if (i < kSub) return 1;
    const std::uint64_t block = (i >> kSubBits) - 1;
    return std::uint64_t{1} << block;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

/// Owner and name directory of all metrics.  Lookup is mutex-protected and
/// intended for attach time, not the hot path: fetch the metric once, keep
/// the reference.  Metrics are created on first lookup.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  LogHistogram& log_histogram(std::string_view name);

  std::size_t size() const;

  /// Writes every metric as one "name kind value [stats]" line, sorted by
  /// name (stable across runs; greppable).
  void dump(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>>
      log_histograms_;
};

}  // namespace polaris::obs
