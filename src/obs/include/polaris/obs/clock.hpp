// Clock abstraction for the tracer.
//
// The same Tracer serves both runtimes: the simulated runtime stamps spans
// with des::Engine simulated nanoseconds, the real threaded runtime with a
// monotonic wall clock zeroed at construction.  Both produce int64
// nanoseconds since "trace start", so exports and analysis are
// clock-agnostic.
#pragma once

#include <chrono>
#include <cstdint>

#include "polaris/des/engine.hpp"

namespace polaris::obs {

class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual std::int64_t now_ns() const = 0;
};

/// Monotonic wall clock; zero at construction.
class WallClock final : public ClockSource {
 public:
  WallClock() : t0_(std::chrono::steady_clock::now()) {}

  std::int64_t now_ns() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Simulated time of a DES engine (already integer nanoseconds).
class SimClock final : public ClockSource {
 public:
  explicit SimClock(const des::Engine& engine) : engine_(&engine) {}

  std::int64_t now_ns() const override { return engine_->now(); }

 private:
  const des::Engine* engine_;
};

}  // namespace polaris::obs
