// Scoped-span tracer with Chrome trace-event JSON export.
//
// A Tracer collects spans (operations with duration), instants (point
// events) and counter samples on named tracks, stamped by a ClockSource
// (simulated or wall time).  write_json() emits the Chrome trace-event
// format, loadable in chrome://tracing or ui.perfetto.dev: tracks are
// grouped into processes ("ranks", "links", ...), and spans that overlap
// on one track — background isends, concurrent sendrecv halves — are
// packed into extra lanes so every exported thread timeline is properly
// nested.
//
// Instrumented code holds a `Tracer*` that is null until an observer
// attaches; every hook is a branch on that pointer, so an untraced run
// pays nothing else.  Two storage modes:
//
//  * Full mode (default): every event is retained verbatim (std::string
//    name/category, one mutex around the log).  Exact, unbounded, and
//    byte-stable — the golden-trace suite pins its JSON output.
//  * Ring mode (construct with RingOptions): each track owns a fixed
//    capacity single-producer/single-consumer ring of 32-byte compact
//    events over interned name IDs.  record = a relaxed enabled check, a
//    deterministic 1-in-N sampling branch, and (if sampled) a clock read
//    plus one ring slot write — no allocation, no lock, no string.  When a
//    ring fills, the newest events are dropped and counted; always-on
//    per-track counters (span count, sampled span nanoseconds, drops) stay
//    exact regardless of sampling.  TraceStreamWriter drains rings
//    incrementally so arbitrarily long runs export in bounded memory.
//
// Ring-mode concurrency contract: each track is recorded by at most one
// thread at a time (ranks, shards and links already have per-owner
// tracks); the drainer may run concurrently with all producers.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "polaris/obs/clock.hpp"
#include "polaris/support/check.hpp"

namespace polaris::obs {

using TrackId = std::uint32_t;

/// Interned event-name handle.  Id 0 is always the empty string.
using NameId = std::uint32_t;
inline constexpr NameId kNoName = 0;

enum class EventKind : std::uint8_t {
  kSpan,     ///< has start and duration
  kInstant,  ///< point in time
  kCounter,  ///< sampled value
};

struct TraceEvent {
  TrackId track = 0;
  EventKind kind = EventKind::kSpan;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;  ///< spans only; -1 while still open
  double value = 0.0;       ///< counters only
  std::string name;
  std::string category;

  bool open() const { return kind == EventKind::kSpan && dur_ns < 0; }
  std::int64_t end_ns() const { return start_ns + (dur_ns < 0 ? 0 : dur_ns); }
};

/// Handle for an open span.  Full mode: index into the event log.  Ring
/// mode: tagged (track, open-slot) pair.  An invalid id (disabled tracer,
/// unsampled span, slot pool exhausted) makes end_span a no-op.
struct SpanId {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
};

/// Bounded-memory tracing knobs; passing this to the Tracer constructor
/// selects ring mode.
struct RingOptions {
  /// Events retained per track; rounded up to a power of two.  A full ring
  /// drops the newest events (counted per track).
  std::size_t ring_capacity = std::size_t{1} << 14;
  /// Deterministic sampling: the k-th span (resp. instant) on a track is
  /// recorded iff k % sample_every == 0 (rounded up to a power of two).
  /// Counters keep exact totals either way.  1 = record everything.
  std::uint32_t sample_every = 1;
  /// Concurrently-open spans per track (begin/end pairs in flight).
  std::uint32_t open_span_slots = 64;
  /// Upper bound on add_track() calls (contract-checked).  The always-on
  /// per-track counters are preallocated densely up front — several tracks
  /// per cache line — so the sampled-away record path touches one hot line
  /// instead of each track's ring header.
  std::size_t max_tracks = 4096;
};

namespace detail {

/// 32-byte interned event; track is implicit (one ring per track).
struct CompactEvent {
  std::int64_t start_ns = 0;
  std::int64_t aux = 0;  ///< span: dur_ns; counter: bit pattern of value
  NameId name = kNoName;
  NameId category = kNoName;
  EventKind kind = EventKind::kSpan;
};

/// Single-writer counter bump: the atomic is for the exporter's benefit,
/// but only the track's owner thread stores it, so this is a plain
/// load/add/store — one add on x86 instead of a serializing lock-prefixed
/// fetch_add.
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t d = 1) {
  c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

/// Always-on per-track totals, preallocated as one dense array (two tracks
/// per cache line) so the sampled-away record path — which touches nothing
/// but these — stays cache-resident even with dozens of live tracks.  The
/// per-kind totals double as the sampling phase.  Single-writer per track
/// (the ring-mode concurrency contract); 32-byte aligned so an entry never
/// straddles a line.
struct alignas(32) HotCounters {
  std::atomic<std::uint64_t> spans_total{0};
  std::atomic<std::uint64_t> instants_total{0};
  std::atomic<std::uint64_t> counters_total{0};
  // Busy nanoseconds: exact for complete_span (duration known before the
  // sampling gate); begin/end spans contribute only when sampled.
  std::atomic<std::uint64_t> span_ns_total{0};
};

/// Single-producer/single-consumer bounded event ring plus the producer's
/// open-span slot pool and drop accounting for one track.  Only reached on
/// the sampled (1-in-N) path — the always-on totals live in the dense
/// HotCounters array instead, so a sampled-away event never pulls a ring
/// header into cache.
struct TrackRing {
  explicit TrackRing(const RingOptions& opts);

  // Producer side (the track's owner thread).
  bool push(const CompactEvent& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= buf.size()) {
      // Drop-newest keeps the ring a coherent prefix of each track's
      // history and never blocks the producer.
      bump(dropped_ring_full);
      return false;
    }
    buf[static_cast<std::size_t>(h) & mask] = ev;
    head.store(h + 1, std::memory_order_release);
    bump(sampled_events);
    return true;
  }

  std::uint32_t claim_slot() {
    if (free_slots.empty()) return kNoSlot;
    const std::uint32_t slot = free_slots.back();
    free_slots.pop_back();
    return slot;
  }

  void release_slot(std::uint32_t slot) { free_slots.push_back(slot); }

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct OpenSpan {
    std::int64_t start_ns = 0;
    NameId name = kNoName;
    NameId category = kNoName;
  };

  std::vector<CompactEvent> buf;
  std::size_t mask = 0;
  // Producer line: the head index, slot pool and sampled/drop accounting,
  // padded away from tail so the consumer's tail stores never invalidate
  // it.  Single-writer relaxed atomics (see bump()).
  alignas(64) std::atomic<std::uint64_t> head{0};
  std::vector<OpenSpan> open;
  std::vector<std::uint32_t> free_slots;
  std::atomic<std::uint64_t> sampled_events{0};
  std::atomic<std::uint64_t> dropped_ring_full{0};
  std::atomic<std::uint64_t> dropped_no_slot{0};
  // Consumer-owned: advanced by the drainer.
  alignas(64) std::atomic<std::uint64_t> tail{0};
};

/// Lock-free track -> ring lookup table, republished (RCU-style) when a
/// track is added; retired tables stay alive until the tracer dies so a
/// concurrent reader never touches freed memory.
struct RingTable {
  TrackRing* const* rings = nullptr;
  std::size_t count = 0;
};

}  // namespace detail

class Tracer {
 public:
  /// Full-fidelity tracer stamped by `clock`; the clock must outlive the
  /// tracer.  Retains every event verbatim.
  explicit Tracer(const ClockSource& clock) : clock_(&clock) {}

  /// Ring-mode tracer: bounded per-track rings, interned names, sampling.
  Tracer(const ClockSource& clock, const RingOptions& opts)
      : clock_(&clock), ring_opts_(opts), ring_mode_(true) {
    init_ring_mode();
  }

  /// Clockless tracer: only complete_span/instant_at with explicit
  /// timestamps are meaningful (e.g. post-hoc Gantt export).
  Tracer() = default;

  /// Clockless ring-mode tracer (explicit-timestamp record calls only).
  explicit Tracer(const RingOptions& opts)
      : ring_opts_(opts), ring_mode_(true) {
    init_ring_mode();
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Registers a track.  `process` groups tracks into one Chrome process
  /// row ("ranks", "links", "jobs"); `name` labels the thread timeline.
  TrackId add_track(std::string process, std::string name);

  /// Interns a name, returning a stable id usable on any record call.
  /// Takes a mutex: call at attach time (or for cold dynamic names), cache
  /// the id on the hot path.  The same string always yields the same id.
  NameId intern(std::string_view s);

  /// Resolves an interned id (registry lookup under the intern mutex).
  std::string name_of(NameId id) const;

  bool ring_mode() const { return ring_mode_; }

  /// Master record switch.  While disabled every record call returns after
  /// one relaxed atomic load — the "attached but idle" state benched in
  /// BENCH_OBS.  Export and track registration still work.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::int64_t now_ns() const { return clock_ ? clock_->now_ns() : 0; }

  /// Opens a span at the current clock time.  end_span() closes it; a span
  /// never closed is exported with zero duration (full mode) or dropped at
  /// destruction (ring mode).
  SpanId begin_span(TrackId track, std::string name,
                    std::string category = {}) {
    if (!enabled()) return SpanId{};
    return begin_span_slow(track, std::move(name), std::move(category));
  }
  SpanId begin_span(TrackId track, NameId name, NameId category = kNoName) {
    if (!enabled()) return SpanId{};
    if (!ring_mode_) return begin_span_id(track, name, category);
    // Sampled-away spans are counted and nothing else: no clock read, no
    // slot claim, no ring lookup; the invalid id makes end_span a no-op.
    if (!tick(hot(track).spans_total)) return SpanId{};
    return begin_span_sampled(track, ring(track), name, category);
  }
  void end_span(SpanId id) {
    if (!id.valid()) return;
    end_span_impl(id);
  }

  /// Records an already-finished span with explicit timestamps.
  void complete_span(TrackId track, std::string name, std::string category,
                     std::int64_t start_ns, std::int64_t dur_ns) {
    if (!enabled()) return;
    complete_span_slow(track, std::move(name), std::move(category), start_ns,
                       dur_ns);
  }
  void complete_span(TrackId track, NameId name, NameId category,
                     std::int64_t start_ns, std::int64_t dur_ns) {
    if (!enabled()) return;
    if (!ring_mode_) {
      complete_span_id(track, name, category, start_ns, dur_ns);
      return;
    }
    POLARIS_DCHECK(dur_ns >= 0);
    detail::HotCounters& h = hot(track);
    // Duration is already known here, so the busy-ns counter stays exact
    // for every completed span even when the event itself is sampled away.
    detail::bump(h.span_ns_total, static_cast<std::uint64_t>(dur_ns));
    if (!tick(h.spans_total)) return;
    ring(track).push({start_ns, dur_ns, name, category, EventKind::kSpan});
  }

  /// Point event at the current clock time.
  void instant(TrackId track, std::string name, std::string category = {}) {
    if (!enabled()) return;
    instant_at_slow(track, std::move(name), std::move(category), now_ns());
  }
  void instant(TrackId track, NameId name, NameId category = kNoName) {
    if (!enabled()) return;
    if (!ring_mode_) {
      instant_at_id(track, name, category, now_ns());
      return;
    }
    if (!tick(hot(track).instants_total)) return;
    // Clock read and ring lookup only behind the sampling gate.
    ring(track).push({now_ns(), 0, name, category, EventKind::kInstant});
  }
  void instant_at(TrackId track, std::string name, std::string category,
                  std::int64_t at_ns) {
    if (!enabled()) return;
    instant_at_slow(track, std::move(name), std::move(category), at_ns);
  }

  /// Samples a counter series (rendered as a stacked area in the viewer).
  void counter(TrackId track, std::string name, double value) {
    if (!enabled()) return;
    counter_slow(track, std::move(name), value);
  }
  void counter(TrackId track, NameId name, double value) {
    if (!enabled()) return;
    if (!ring_mode_) {
      counter_id(track, name, value);
      return;
    }
    detail::bump(hot(track).counters_total);
    ring(track).push({
        now_ns(),
        static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value)),
        name, kNoName, EventKind::kCounter});
  }

  std::size_t event_count() const;
  std::size_t track_count() const;

  /// Snapshot of the event log; open spans are closed at the current clock
  /// time so analysis never sees negative durations.  Ring mode: decodes
  /// the rings without consuming them (events already drained by a
  /// TraceStreamWriter are gone; still-open spans are not included).
  std::vector<TraceEvent> snapshot() const;

  struct Track {
    std::string process;
    std::string name;
  };
  std::vector<Track> tracks() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}), one event per line,
  /// sorted by start time within each exported lane.  Ring mode: streams
  /// the current (undrained) ring contents; use TraceStreamWriter to
  /// export more events than the rings hold.
  void write_json(std::ostream& os) const;

  /// Aggregate record-path accounting (ring mode; full mode fills the
  /// event/track counts only).  Used by tests and the BENCH_OBS
  /// steady-state allocation check: interned_names and
  /// ring_capacity_events must not move between warmup and steady state.
  struct Stats {
    std::uint64_t spans_total = 0;
    std::uint64_t instants_total = 0;
    std::uint64_t counters_total = 0;
    std::uint64_t span_ns_total = 0;
    std::uint64_t sampled_events = 0;
    std::uint64_t dropped_ring_full = 0;
    std::uint64_t dropped_no_slot = 0;
    std::uint64_t drained_events = 0;
    std::size_t interned_names = 0;
    std::size_t ring_capacity_events = 0;
    std::size_t track_count = 0;
  };
  Stats stats() const;

 private:
  friend class TraceStreamWriter;

  SpanId begin_span_slow(TrackId track, std::string name,
                         std::string category);
  SpanId begin_span_id(TrackId track, NameId name, NameId category);
  SpanId begin_span_sampled(TrackId track, detail::TrackRing& r, NameId name,
                            NameId category);
  void end_span_impl(SpanId id);
  void complete_span_slow(TrackId track, std::string name,
                          std::string category, std::int64_t start_ns,
                          std::int64_t dur_ns);
  void complete_span_id(TrackId track, NameId name, NameId category,
                        std::int64_t start_ns, std::int64_t dur_ns);
  void instant_at_slow(TrackId track, std::string name, std::string category,
                       std::int64_t at_ns);
  void instant_at_id(TrackId track, NameId name, NameId category,
                     std::int64_t at_ns);
  void counter_slow(TrackId track, std::string name, double value);
  void counter_id(TrackId track, NameId name, double value);

  detail::TrackRing& ring(TrackId track) const {
    const detail::RingTable* table =
        ring_table_.load(std::memory_order_acquire);
    POLARIS_CHECK(table != nullptr && track < table->count);
    return *table->rings[track];
  }

  /// Dense always-on counters for a track (ring mode; preallocated for
  /// max_tracks at construction, so the pointer never moves).
  detail::HotCounters& hot(TrackId track) const {
    POLARIS_DCHECK(hot_ != nullptr && track < ring_opts_.max_tracks);
    return hot_[track];
  }

  /// Counts one event of a kind and reports whether it is the sampled one
  /// (the 1st, N+1th, ... of that kind on the track).
  bool tick(std::atomic<std::uint64_t>& total) const {
    const std::uint64_t seen = total.load(std::memory_order_relaxed);
    total.store(seen + 1, std::memory_order_relaxed);
    return (seen & sample_mask_) == 0;
  }

  NameId intern_locked(std::string_view s);
  TraceEvent decode(TrackId track, const detail::CompactEvent& ev) const;
  /// Allocates the dense counter array and derives the sampling mask
  /// (sample_every rounded up to a power of two).
  void init_ring_mode();

  const ClockSource* clock_ = nullptr;
  RingOptions ring_opts_;
  bool ring_mode_ = false;
  std::atomic<bool> enabled_{true};
  // Record-path hot members, grouped: the sampling mask and the dense
  // counter array base are read on every ring-mode record call.
  std::uint64_t sample_mask_ = 0;
  std::unique_ptr<detail::HotCounters[]> hot_;

  mutable std::mutex mu_;
  std::vector<Track> tracks_;
  std::vector<TraceEvent> events_;  // full mode only

  // Name interning (both modes; ids resolve to strings at export).
  mutable std::mutex intern_mu_;
  std::vector<std::string> names_{std::string()};  // names_[0] == ""
  std::unordered_map<std::string, NameId> name_ids_;

  // Ring mode: address-stable rings plus an RCU-republished lookup table
  // so record() never takes mu_.
  std::deque<detail::TrackRing> rings_;
  std::atomic<detail::RingTable*> ring_table_{nullptr};
  std::vector<std::unique_ptr<detail::RingTable>> retired_tables_;
  std::vector<std::unique_ptr<detail::TrackRing*[]>> retired_arrays_;
  std::atomic<std::uint64_t> drained_events_{0};
};

/// Streams a ring-mode tracer's events to Chrome trace JSON in bounded
/// memory: construct (writes the header), call drain() as often as desired
/// while producers are still recording (each call consumes the rings), and
/// finish() once they quiesce.  Thread/process metadata is emitted inline
/// the first time a track (or overflow lane) appears, so the output is
/// deterministic for deterministic per-track event streams regardless of
/// how record work was spread over threads.
class TraceStreamWriter {
 public:
  TraceStreamWriter(Tracer& tracer, std::ostream& os);
  TraceStreamWriter(const TraceStreamWriter&) = delete;
  TraceStreamWriter& operator=(const TraceStreamWriter&) = delete;
  ~TraceStreamWriter();

  /// Consumes everything currently in the rings; returns events written.
  std::size_t drain();
  /// Final drain plus the JSON footer (idempotent).
  void finish();

  std::size_t events_written() const { return events_written_; }

 private:
  friend class Tracer;

  struct LaneState {
    std::vector<std::int64_t> open_ends;
    bool announced = false;
  };

  /// consume=false reads rings without advancing their tails (the
  /// repeatable Tracer::write_json convenience path).
  TraceStreamWriter(Tracer& tracer, std::ostream& os, bool consume);

  void emit_event(const TraceEvent& ev);
  void announce_lane(TrackId track, int lane);
  int pid_of_track(TrackId track);
  int tid_of(TrackId track, int lane);

  Tracer* tracer_;
  std::ostream* os_;
  bool consume_ = true;
  bool first_ = true;
  bool finished_ = false;
  std::size_t events_written_ = 0;
  std::unordered_map<std::string, int> pids_;
  std::vector<int> track_pid_;                 // -1 = not yet announced
  std::vector<std::vector<LaneState>> lanes_;  // per track
  std::vector<TraceEvent> batch_;              // reused scratch
};

/// FNV-1a fingerprint of the tracer's exported JSON (write_json byte
/// stream).  Two runs that produced the same trace hash to the same value
/// on every platform — the cheap "did these runs behave identically?"
/// check the scenario runner's determinism verdicts are built on.  Ring
/// mode hashes the current (undrained) ring contents, like write_json.
std::uint64_t trace_hash(const Tracer& tracer);

/// RAII span; a null tracer makes every operation a no-op, so call sites
/// need no branches of their own.  Safe to keep across co_await (lives in
/// the coroutine frame).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, TrackId track, std::string name,
             std::string category = {})
      : tracer_(tracer) {
    if (tracer_) {
      id_ = tracer_->begin_span(track, std::move(name), std::move(category));
    }
  }
  ScopedSpan(Tracer* tracer, TrackId track, NameId name,
             NameId category = kNoName)
      : tracer_(tracer) {
    if (tracer_) id_ = tracer_->begin_span(track, name, category);
  }
  ~ScopedSpan() { end(); }

  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)), id_(other.id_) {}
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = std::exchange(other.tracer_, nullptr);
      id_ = other.id_;
    }
    return *this;
  }

  /// Closes the span early (idempotent).
  void end() {
    if (tracer_) {
      tracer_->end_span(id_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_;
};

}  // namespace polaris::obs
