// Scoped-span tracer with Chrome trace-event JSON export.
//
// A Tracer collects spans (operations with duration), instants (point
// events) and counter samples on named tracks, stamped by a ClockSource
// (simulated or wall time).  write_json() emits the Chrome trace-event
// format, loadable in chrome://tracing or ui.perfetto.dev: tracks are
// grouped into processes ("ranks", "links", ...), and spans that overlap
// on one track — background isends, concurrent sendrecv halves — are
// packed into extra lanes so every exported thread timeline is properly
// nested.
//
// Instrumented code holds a `Tracer*` that is null until an observer
// attaches; every hook is a branch on that pointer, so an untraced run
// pays nothing else.  Recording is thread-safe (one mutex around the event
// log): the DES engine is single-threaded, the real runtime's rank threads
// contend only while tracing is on.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "polaris/obs/clock.hpp"

namespace polaris::obs {

using TrackId = std::uint32_t;

enum class EventKind : std::uint8_t {
  kSpan,     ///< has start and duration
  kInstant,  ///< point in time
  kCounter,  ///< sampled value
};

struct TraceEvent {
  TrackId track = 0;
  EventKind kind = EventKind::kSpan;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;  ///< spans only; -1 while still open
  double value = 0.0;       ///< counters only
  std::string name;
  std::string category;

  bool open() const { return kind == EventKind::kSpan && dur_ns < 0; }
  std::int64_t end_ns() const { return start_ns + (dur_ns < 0 ? 0 : dur_ns); }
};

/// Handle for an open span (index into the event log).
struct SpanId {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
};

class Tracer {
 public:
  /// Spans stamped by `clock`; the clock must outlive the tracer.
  explicit Tracer(const ClockSource& clock) : clock_(&clock) {}

  /// Clockless tracer: only complete_span/instant_at with explicit
  /// timestamps are meaningful (e.g. post-hoc Gantt export).
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a track.  `process` groups tracks into one Chrome process
  /// row ("ranks", "links", "jobs"); `name` labels the thread timeline.
  TrackId add_track(std::string process, std::string name);

  std::int64_t now_ns() const { return clock_ ? clock_->now_ns() : 0; }

  /// Opens a span at the current clock time.  end_span() closes it; a span
  /// never closed is exported with zero duration.
  SpanId begin_span(TrackId track, std::string name,
                    std::string category = {});
  void end_span(SpanId id);

  /// Records an already-finished span with explicit timestamps.
  void complete_span(TrackId track, std::string name, std::string category,
                     std::int64_t start_ns, std::int64_t dur_ns);

  /// Point event at the current clock time.
  void instant(TrackId track, std::string name, std::string category = {});
  void instant_at(TrackId track, std::string name, std::string category,
                  std::int64_t at_ns);

  /// Samples a counter series (rendered as a stacked area in the viewer).
  void counter(TrackId track, std::string name, double value);

  std::size_t event_count() const;
  std::size_t track_count() const;

  /// Snapshot of the event log; open spans are closed at the current clock
  /// time so analysis never sees negative durations.
  std::vector<TraceEvent> snapshot() const;

  struct Track {
    std::string process;
    std::string name;
  };
  std::vector<Track> tracks() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}), one event per line,
  /// sorted by start time within each exported lane.
  void write_json(std::ostream& os) const;

 private:
  const ClockSource* clock_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Track> tracks_;
  std::vector<TraceEvent> events_;
};

/// RAII span; a null tracer makes every operation a no-op, so call sites
/// need no branches of their own.  Safe to keep across co_await (lives in
/// the coroutine frame).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, TrackId track, std::string name,
             std::string category = {})
      : tracer_(tracer) {
    if (tracer_) {
      id_ = tracer_->begin_span(track, std::move(name), std::move(category));
    }
  }
  ~ScopedSpan() { end(); }

  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)), id_(other.id_) {}
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = std::exchange(other.tracer_, nullptr);
      id_ = other.id_;
    }
    return *this;
  }

  /// Closes the span early (idempotent).
  void end() {
    if (tracer_) {
      tracer_->end_span(id_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_;
};

}  // namespace polaris::obs
