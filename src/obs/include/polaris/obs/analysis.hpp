// Post-hoc trace analysis: span aggregation and critical-path
// reconstruction.
//
// The critical path of an SPMD run is approximated from span timing alone:
// starting at the last span to finish, walk backwards, at each point
// choosing the span (on any analyzed track) that was active then — the
// work the run could not have finished without.  When rank timelines are
// fully instrumented (every wait, transfer and compute is a span, as the
// simulated runtime guarantees), the reconstructed chain covers the
// makespan up to instrumentation gaps, and its per-name aggregation says
// where an optimizer should look first.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "polaris/obs/trace.hpp"

namespace polaris::obs {

/// Aggregate share of one span name.
struct Contribution {
  std::string name;
  double seconds = 0.0;
  std::size_t spans = 0;
  double fraction = 0.0;  ///< of the reference interval (path or makespan)
};

/// One link of the reconstructed chain, chronological.
struct PathStep {
  TrackId track = 0;
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t covered_ns = 0;  ///< contribution to the path (overlap-free)
};

struct CriticalPath {
  double makespan_s = 0.0;  ///< first span start to last span end
  double length_s = 0.0;    ///< time covered by the chain
  double coverage = 0.0;    ///< length / makespan (1.0 = fully explained)
  std::vector<PathStep> steps;
  std::vector<Contribution> contributors;  ///< by covered time, descending
};

class TraceAnalysis {
 public:
  /// Snapshots the tracer's events; the tracer may keep recording.
  explicit TraceAnalysis(const Tracer& tracer);

  /// Analysis over an explicit event set (post-hoc, e.g. loaded traces).
  TraceAnalysis(std::vector<TraceEvent> events,
                std::vector<Tracer::Track> tracks);

  /// Reconstructs the critical path over the tracks of one process group
  /// (empty = every track).
  CriticalPath critical_path(std::string_view process = "ranks") const;

  /// Total span seconds by name across a process group (all spans, not
  /// just the critical path), descending.
  std::vector<Contribution> total_by_name(
      std::string_view process = {}) const;

  /// Human-readable report of a critical path: makespan, coverage, top
  /// contributors and the head of the chain.
  static void report(std::ostream& os, const CriticalPath& path,
                     std::size_t top_n = 10);

 private:
  std::vector<std::size_t> spans_in(std::string_view process) const;

  std::vector<TraceEvent> events_;
  std::vector<Tracer::Track> tracks_;
};

}  // namespace polaris::obs
