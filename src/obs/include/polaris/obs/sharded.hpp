// Sharded metric registry: one lock-free shard per worker thread, merged
// at export.
//
// MetricsRegistry's Counter/Gauge are atomics (cross-thread but contended
// under fan-in) and Histogram takes a mutex — fine at experiment scale,
// too hot for 10^6-rank engines.  ShardedRegistry splits every metric into
// per-shard plain (non-atomic) slots: a worker owns exactly one Shard and
// updates it with ordinary loads/stores (an increment, a max, a
// LogHistogram bucket bump — no locks, no cache-line ping-pong), and the
// coordinator folds shards after the workers quiesce.  This replaces the
// hand-rolled "vector of per-shard LogHistogram pointers +
// LogHistogram::merge" pattern that pdes and serve each grew on their own.
//
// Lifecycle contract:
//  1. Register metrics (counter/gauge_max/log_histogram) single-threaded,
//     before any worker touches a shard.  Ids are dense indices; cache
//     them — registration is a name lookup.
//  2. Workers record into their own shard only.  No synchronization: the
//     shard is single-owner by construction.
//  3. After a barrier/join, read merged values (counter_value, merged,
//     export_into) or reset() for the next run.  Reading while workers
//     are still recording is a data race by contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "polaris/obs/metrics.hpp"

namespace polaris::obs {

class ShardedRegistry {
 public:
  struct CounterId {
    std::uint32_t v = 0;
  };
  struct GaugeId {
    std::uint32_t v = 0;
  };
  struct HistId {
    std::uint32_t v = 0;
  };

  explicit ShardedRegistry(std::size_t shards);

  /// Registration (phase 1): returns a dense id; the same name yields the
  /// same id.  Grows every shard's slot array — single-threaded only.
  CounterId counter(std::string_view name);
  GaugeId gauge_max(std::string_view name);
  HistId log_histogram(std::string_view name);

  /// One worker's private slice of every registered metric.
  class alignas(64) Shard {
   public:
    void add(CounterId id, std::uint64_t n = 1) { counters_[id.v] += n; }
    void observe_max(GaugeId id, double v) {
      if (v > gauges_[id.v]) gauges_[id.v] = v;
    }
    void record(HistId id, std::uint64_t v) { hists_[id.v].record(v); }
    /// Direct handle for call sites that keep a LogHistogram* hot pointer.
    LogHistogram& hist(HistId id) { return hists_[id.v]; }

   private:
    friend class ShardedRegistry;
    std::vector<std::uint64_t> counters_;
    std::vector<double> gauges_;
    std::vector<LogHistogram> hists_;
  };

  Shard& shard(std::size_t i) { return shards_[i]; }
  std::size_t shard_count() const { return shards_.size(); }

  // Export (phase 3) — workers must have quiesced.

  /// Sum of a counter over all shards.
  std::uint64_t counter_value(CounterId id) const;
  /// Max of a gauge over all shards (0.0 if never observed).
  double gauge_max_value(GaugeId id) const;
  /// Bucket-add merge of one histogram over all shards
  /// (LogHistogram::merge under the hood).
  LogHistogram merged(HistId id) const;

  /// Folds everything into a MetricsRegistry under the registered names
  /// (counters add, gauges observe_max, histograms merge_from).  Call once
  /// per run — repeating without reset() double-counts.
  void export_into(MetricsRegistry& reg) const;

  /// Zeroes every shard for reuse; registrations (and ids) survive.
  void reset();

 private:
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<Shard> shards_;
};

}  // namespace polaris::obs
