#include "polaris/obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <sstream>

#include "polaris/support/check.hpp"

namespace polaris::obs {

namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  return std::bit_ceil(v);
}

// Ring-mode SpanId encoding: tag bit | track | open slot.
constexpr std::size_t kRingSpanBit = std::size_t{1} << 63;

std::size_t encode_ring_span(TrackId track, std::uint32_t slot) {
  return kRingSpanBit | (static_cast<std::size_t>(track) << 32) | slot;
}

}  // namespace

namespace detail {

TrackRing::TrackRing(const RingOptions& opts) {
  const std::uint64_t cap = round_up_pow2(opts.ring_capacity);
  buf.resize(static_cast<std::size_t>(cap));
  mask = static_cast<std::size_t>(cap - 1);
  const std::uint32_t slots = opts.open_span_slots > 0
                                  ? opts.open_span_slots
                                  : 1;
  open.resize(slots);
  free_slots.reserve(slots);
  for (std::uint32_t s = slots; s > 0; --s) free_slots.push_back(s - 1);
}

}  // namespace detail

Tracer::~Tracer() = default;

void Tracer::init_ring_mode() {
  POLARIS_CHECK(ring_opts_.max_tracks > 0);
  sample_mask_ = round_up_pow2(ring_opts_.sample_every) - 1;
  hot_ = std::make_unique<detail::HotCounters[]>(ring_opts_.max_tracks);
}

TrackId Tracer::add_track(std::string process, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK_MSG(!ring_mode_ || tracks_.size() < ring_opts_.max_tracks,
                    "RingOptions::max_tracks exceeded");
  tracks_.push_back(Track{std::move(process), std::move(name)});
  const auto id = static_cast<TrackId>(tracks_.size() - 1);
  if (ring_mode_) {
    rings_.emplace_back(ring_opts_);
    // Republish the lookup table; the old one is retired, not freed, so a
    // concurrent recording thread can keep using the pointer it loaded.
    const std::size_t n = rings_.size();
    auto arr = std::make_unique<detail::TrackRing*[]>(n);
    std::size_t i = 0;
    for (detail::TrackRing& r : rings_) arr[i++] = &r;
    auto table = std::make_unique<detail::RingTable>();
    table->rings = arr.get();
    table->count = n;
    detail::RingTable* published = table.get();
    retired_arrays_.push_back(std::move(arr));
    retired_tables_.push_back(std::move(table));
    ring_table_.store(published, std::memory_order_release);
  }
  return id;
}

NameId Tracer::intern(std::string_view s) {
  const std::lock_guard<std::mutex> lock(intern_mu_);
  return intern_locked(s);
}

NameId Tracer::intern_locked(std::string_view s) {
  if (s.empty()) return kNoName;
  if (auto it = name_ids_.find(std::string(s)); it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<NameId>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::string Tracer::name_of(NameId id) const {
  const std::lock_guard<std::mutex> lock(intern_mu_);
  POLARIS_CHECK(id < names_.size());
  return names_[id];
}

// ------------------------------------------------------------ record paths
//
// The NameId ring-mode fast paths live inline in the header; what remains
// here is the full-mode retained log, the string-interning conveniences,
// and the sampled tail of begin_span (slot claim + clock read).

SpanId Tracer::begin_span_slow(TrackId track, std::string name,
                               std::string category) {
  if (ring_mode_) {
    NameId n, c;
    {
      const std::lock_guard<std::mutex> lock(intern_mu_);
      n = intern_locked(name);
      c = intern_locked(category);
    }
    return begin_span_id(track, n, c);
  }
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kSpan;
  ev.start_ns = t;
  ev.dur_ns = -1;  // open
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
  return SpanId{events_.size() - 1};
}

SpanId Tracer::begin_span_id(TrackId track, NameId name, NameId category) {
  if (!ring_mode_) {
    return begin_span_slow(track, name_of(name), name_of(category));
  }
  if (!tick(hot(track).spans_total)) return SpanId{};
  return begin_span_sampled(track, ring(track), name, category);
}

SpanId Tracer::begin_span_sampled(TrackId track, detail::TrackRing& r,
                                  NameId name, NameId category) {
  const std::uint32_t slot = r.claim_slot();
  if (slot == detail::TrackRing::kNoSlot) {
    detail::bump(r.dropped_no_slot);
    return SpanId{};
  }
  detail::TrackRing::OpenSpan& o = r.open[slot];
  o.start_ns = now_ns();
  o.name = name;
  o.category = category;
  return SpanId{encode_ring_span(track, slot)};
}

void Tracer::end_span_impl(SpanId id) {
  if (ring_mode_ && (id.index & kRingSpanBit) != 0) {
    const auto track = static_cast<TrackId>((id.index >> 32) & 0x7fffffffu);
    const auto slot = static_cast<std::uint32_t>(id.index & 0xffffffffu);
    detail::TrackRing& r = ring(track);
    POLARIS_CHECK(slot < r.open.size());
    const detail::TrackRing::OpenSpan o = r.open[slot];
    r.release_slot(slot);
    const std::int64_t dur = std::max<std::int64_t>(now_ns() - o.start_ns, 0);
    detail::bump(hot(track).span_ns_total, static_cast<std::uint64_t>(dur));
    detail::CompactEvent ev;
    ev.start_ns = o.start_ns;
    ev.aux = dur;
    ev.name = o.name;
    ev.category = o.category;
    ev.kind = EventKind::kSpan;
    r.push(ev);
    return;
  }
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(id.index < events_.size());
  TraceEvent& ev = events_[id.index];
  POLARIS_CHECK_MSG(ev.open(), "end_span on a closed span");
  ev.dur_ns = t - ev.start_ns;
}

void Tracer::complete_span_slow(TrackId track, std::string name,
                                std::string category, std::int64_t start_ns,
                                std::int64_t dur_ns) {
  if (ring_mode_) {
    NameId n, c;
    {
      const std::lock_guard<std::mutex> lock(intern_mu_);
      n = intern_locked(name);
      c = intern_locked(category);
    }
    complete_span_id(track, n, c, start_ns, dur_ns);
    return;
  }
  POLARIS_CHECK(dur_ns >= 0);
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kSpan;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
}

void Tracer::complete_span_id(TrackId track, NameId name, NameId category,
                              std::int64_t start_ns, std::int64_t dur_ns) {
  if (!ring_mode_) {
    complete_span_slow(track, name_of(name), name_of(category), start_ns,
                       dur_ns);
    return;
  }
  POLARIS_CHECK(dur_ns >= 0);
  detail::HotCounters& h = hot(track);
  detail::bump(h.span_ns_total, static_cast<std::uint64_t>(dur_ns));
  if (!tick(h.spans_total)) return;
  ring(track).push({start_ns, dur_ns, name, category, EventKind::kSpan});
}

void Tracer::instant_at_slow(TrackId track, std::string name,
                             std::string category, std::int64_t at_ns) {
  if (ring_mode_) {
    NameId n, c;
    {
      const std::lock_guard<std::mutex> lock(intern_mu_);
      n = intern_locked(name);
      c = intern_locked(category);
    }
    instant_at_id(track, n, c, at_ns);
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kInstant;
  ev.start_ns = at_ns;
  ev.dur_ns = 0;
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
}

void Tracer::instant_at_id(TrackId track, NameId name, NameId category,
                           std::int64_t at_ns) {
  if (!ring_mode_) {
    instant_at_slow(track, name_of(name), name_of(category), at_ns);
    return;
  }
  if (!tick(hot(track).instants_total)) return;
  ring(track).push({at_ns, 0, name, category, EventKind::kInstant});
}

void Tracer::counter_slow(TrackId track, std::string name, double value) {
  if (ring_mode_) {
    NameId n;
    {
      const std::lock_guard<std::mutex> lock(intern_mu_);
      n = intern_locked(name);
    }
    counter_id(track, n, value);
    return;
  }
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kCounter;
  ev.start_ns = t;
  ev.dur_ns = 0;
  ev.value = value;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
}

void Tracer::counter_id(TrackId track, NameId name, double value) {
  if (!ring_mode_) {
    counter_slow(track, name_of(name), value);
    return;
  }
  detail::bump(hot(track).counters_total);
  ring(track).push({now_ns(),
                    static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value)),
                    name, kNoName, EventKind::kCounter});
}

// ----------------------------------------------------------------- readers

std::size_t Tracer::event_count() const {
  if (ring_mode_) {
    std::size_t n = 0;
    const detail::RingTable* table =
        ring_table_.load(std::memory_order_acquire);
    if (!table) return 0;
    for (std::size_t t = 0; t < table->count; ++t) {
      const detail::TrackRing& r = *table->rings[t];
      n += static_cast<std::size_t>(
          r.head.load(std::memory_order_acquire) -
          r.tail.load(std::memory_order_relaxed));
    }
    return n;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t Tracer::track_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tracks_.size();
}

TraceEvent Tracer::decode(TrackId track,
                          const detail::CompactEvent& ev) const {
  TraceEvent out;
  out.track = track;
  out.kind = ev.kind;
  out.start_ns = ev.start_ns;
  if (ev.kind == EventKind::kCounter) {
    out.dur_ns = 0;
    out.value = std::bit_cast<double>(static_cast<std::uint64_t>(ev.aux));
  } else {
    out.dur_ns = ev.kind == EventKind::kSpan ? ev.aux : 0;
  }
  out.name = name_of(ev.name);
  out.category = name_of(ev.category);
  return out;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  if (ring_mode_) {
    std::vector<TraceEvent> out;
    const detail::RingTable* table =
        ring_table_.load(std::memory_order_acquire);
    if (!table) return out;
    for (std::size_t t = 0; t < table->count; ++t) {
      const detail::TrackRing& r = *table->rings[t];
      std::uint64_t lo = r.tail.load(std::memory_order_relaxed);
      const std::uint64_t hi = r.head.load(std::memory_order_acquire);
      for (; lo != hi; ++lo) {
        out.push_back(decode(static_cast<TrackId>(t),
                             r.buf[static_cast<std::size_t>(lo) & r.mask]));
      }
    }
    return out;
  }
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = events_;
  for (TraceEvent& ev : out) {
    if (ev.open()) ev.dur_ns = std::max<std::int64_t>(t - ev.start_ns, 0);
  }
  return out;
}

std::vector<Tracer::Track> Tracer::tracks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

Tracer::Stats Tracer::stats() const {
  Stats s;
  s.track_count = track_count();
  if (!ring_mode_) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& ev : events_) {
      switch (ev.kind) {
        case EventKind::kSpan:
          ++s.spans_total;
          break;
        case EventKind::kInstant:
          ++s.instants_total;
          break;
        case EventKind::kCounter:
          ++s.counters_total;
          break;
      }
    }
    s.sampled_events = s.spans_total + s.instants_total + s.counters_total;
    return s;
  }
  {
    const std::lock_guard<std::mutex> lock(intern_mu_);
    s.interned_names = names_.size();
  }
  s.drained_events = drained_events_.load(std::memory_order_relaxed);
  const detail::RingTable* table =
      ring_table_.load(std::memory_order_acquire);
  if (!table) return s;
  for (std::size_t t = 0; t < table->count; ++t) {
    const detail::TrackRing& r = *table->rings[t];
    const detail::HotCounters& h = hot_[t];
    s.spans_total += h.spans_total.load(std::memory_order_relaxed);
    s.instants_total += h.instants_total.load(std::memory_order_relaxed);
    s.counters_total += h.counters_total.load(std::memory_order_relaxed);
    s.span_ns_total += h.span_ns_total.load(std::memory_order_relaxed);
    s.sampled_events += r.sampled_events.load(std::memory_order_relaxed);
    s.dropped_ring_full +=
        r.dropped_ring_full.load(std::memory_order_relaxed);
    s.dropped_no_slot += r.dropped_no_slot.load(std::memory_order_relaxed);
    s.ring_capacity_events += r.buf.size();
  }
  return s;
}

// ------------------------------------------------------------- JSON export

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microsecond timestamp with nanosecond precision kept as a fraction.
std::string format_us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

void write_metadata(std::ostream& os, const char* what, int pid, int tid,
                    const std::string& value, int sort_index, bool* first) {
  std::string name;
  append_escaped(name, value);
  if (!*first) os << ",\n";
  *first = false;
  os << R"({"ph":"M","pid":)" << pid;
  if (tid >= 0) os << R"(,"tid":)" << tid;
  os << R"(,"name":")" << what << R"(","args":{"name":")" << name
     << R"("}})";
  if (sort_index >= 0) {
    os << ",\n"
       << R"({"ph":"M","pid":)" << pid;
    if (tid >= 0) os << R"(,"tid":)" << tid;
    os << R"(,"name":")" << (tid >= 0 ? "thread_sort_index"
                                      : "process_sort_index")
       << R"(","args":{"sort_index":)" << sort_index << "}}";
  }
}

void write_event(std::ostream& os, const TraceEvent& ev, int pid, int tid,
                 bool* first) {
  std::string name, cat;
  append_escaped(name, ev.name);
  append_escaped(cat, ev.category.empty() ? std::string("polaris")
                                          : ev.category);
  if (!*first) os << ",\n";
  *first = false;
  switch (ev.kind) {
    case EventKind::kSpan:
      os << R"({"ph":"X","pid":)" << pid << R"(,"tid":)" << tid
         << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"dur":)"
         << format_us(ev.dur_ns) << R"(,"name":")" << name
         << R"(","cat":")" << cat << R"("})";
      break;
    case EventKind::kInstant:
      os << R"({"ph":"i","pid":)" << pid << R"(,"tid":)" << tid
         << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"s":"t","name":")"
         << name << R"(","cat":")" << cat << R"("})";
      break;
    case EventKind::kCounter:
      os << R"({"ph":"C","pid":)" << pid << R"(,"tid":)" << tid
         << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"name":")" << name
         << R"(","args":{"value":)" << ev.value << "}}";
      break;
  }
}

constexpr int kMaxLanesPerTrack = 64;

/// Sort key shared by the retained-log and streaming exporters: by track,
/// then start time, longer spans first so parents precede children.
bool event_order(const TraceEvent& a, const TraceEvent& b) {
  if (a.track != b.track) return a.track < b.track;
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  return a.dur_ns > b.dur_ns;
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  if (ring_mode_) {
    // Bounded by ring capacity; a non-consuming convenience wrapper over
    // the streaming path (repeatable, const).  For runs bigger than the
    // rings, attach a TraceStreamWriter and drain as the run progresses.
    TraceStreamWriter writer(const_cast<Tracer&>(*this), os,
                             /*consume=*/false);
    writer.drain();
    writer.finish();
    return;
  }
  const std::vector<TraceEvent> events = snapshot();
  const std::vector<Track> tracks = this->tracks();

  // Process name -> pid, in first-registration order.
  std::map<std::string, int> pids;
  std::vector<std::string> pid_names;
  std::vector<int> track_pid(tracks.size(), 0);
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto [it, inserted] =
        pids.emplace(tracks[i].process, static_cast<int>(pids.size()));
    if (inserted) pid_names.push_back(tracks[i].process);
    track_pid[i] = it->second;
  }

  // Sort span/instant event indices per track by start time (counters are
  // emitted in recorded order; the viewer interpolates the series anyway).
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return event_order(events[a], events[b]);
                   });

  // Lane allocation: spans that only nest share lane 0; a span that
  // partially overlaps every open lane gets a fresh lane.  Each (track,
  // lane) pair becomes one exported tid, so every exported timeline is
  // properly nested and Chrome renders it without warnings.
  struct Lane {
    std::vector<std::int64_t> open_ends;  // stack of enclosing span ends
  };
  std::vector<std::vector<Lane>> lanes(tracks.size());
  std::vector<int> event_lane(events.size(), 0);
  for (const std::size_t i : order) {
    const TraceEvent& ev = events[i];
    if (ev.kind != EventKind::kSpan) continue;
    auto& track_lanes = lanes[ev.track];
    int lane = -1;
    for (std::size_t l = 0; l < track_lanes.size(); ++l) {
      auto& open = track_lanes[l].open_ends;
      while (!open.empty() && open.back() <= ev.start_ns) open.pop_back();
      if (open.empty() || ev.end_ns() <= open.back()) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      track_lanes.emplace_back();
      lane = static_cast<int>(track_lanes.size()) - 1;
    }
    track_lanes[static_cast<std::size_t>(lane)].open_ends.push_back(
        ev.end_ns());
    event_lane[i] = lane;
  }

  // tid assignment: lanes of one track are adjacent; lane 0 keeps the
  // track's name, extra lanes get a ~n suffix.
  auto tid_of = [&](TrackId track, int lane) {
    return static_cast<int>(track) * kMaxLanesPerTrack +
           std::min(lane, kMaxLanesPerTrack - 1);
  };

  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (int pid = 0; pid < static_cast<int>(pid_names.size()); ++pid) {
    write_metadata(os, "process_name", pid, -1, pid_names[static_cast<
                       std::size_t>(pid)], pid, &first);
  }
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    const std::size_t n_lanes = std::max<std::size_t>(lanes[t].size(), 1);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      std::string name = tracks[t].name;
      if (l > 0) name += " ~" + std::to_string(l);
      write_metadata(os, "thread_name", track_pid[t],
                     tid_of(static_cast<TrackId>(t), static_cast<int>(l)),
                     name, tid_of(static_cast<TrackId>(t),
                                  static_cast<int>(l)),
                     &first);
    }
  }

  for (const std::size_t i : order) {
    const TraceEvent& ev = events[i];
    write_event(os, ev, track_pid[ev.track], tid_of(ev.track, event_lane[i]),
                &first);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

// ------------------------------------------------------- streaming export

TraceStreamWriter::TraceStreamWriter(Tracer& tracer, std::ostream& os)
    : TraceStreamWriter(tracer, os, /*consume=*/true) {}

TraceStreamWriter::TraceStreamWriter(Tracer& tracer, std::ostream& os,
                                     bool consume)
    : tracer_(&tracer), os_(&os), consume_(consume) {
  POLARIS_CHECK_MSG(tracer.ring_mode(),
                    "TraceStreamWriter requires a ring-mode tracer");
  *os_ << "{\"traceEvents\":[\n";
}

TraceStreamWriter::~TraceStreamWriter() { finish(); }

int TraceStreamWriter::tid_of(TrackId track, int lane) {
  return static_cast<int>(track) * kMaxLanesPerTrack +
         std::min(lane, kMaxLanesPerTrack - 1);
}

int TraceStreamWriter::pid_of_track(TrackId track) {
  if (track < track_pid_.size() && track_pid_[track] >= 0) {
    return track_pid_[track];
  }
  const std::vector<Tracer::Track> tracks = tracer_->tracks();
  POLARIS_CHECK(track < tracks.size());
  if (track_pid_.size() < tracks.size()) track_pid_.resize(tracks.size(), -1);
  auto [it, inserted] = pids_.emplace(tracks[track].process,
                                      static_cast<int>(pids_.size()));
  if (inserted) {
    write_metadata(*os_, "process_name", it->second, -1,
                   tracks[track].process, it->second, &first_);
  }
  track_pid_[track] = it->second;
  return it->second;
}

void TraceStreamWriter::announce_lane(TrackId track, int lane) {
  if (lanes_.size() <= track) lanes_.resize(track + 1);
  auto& track_lanes = lanes_[track];
  if (track_lanes.size() <= static_cast<std::size_t>(lane)) {
    track_lanes.resize(static_cast<std::size_t>(lane) + 1);
  }
  LaneState& state = track_lanes[static_cast<std::size_t>(lane)];
  if (state.announced) return;
  state.announced = true;
  const int pid = pid_of_track(track);
  std::string name = tracer_->tracks()[track].name;
  if (lane > 0) name += " ~" + std::to_string(lane);
  write_metadata(*os_, "thread_name", pid, tid_of(track, lane), name,
                 tid_of(track, lane), &first_);
}

void TraceStreamWriter::emit_event(const TraceEvent& ev) {
  int lane = 0;
  if (ev.kind == EventKind::kSpan) {
    if (lanes_.size() <= ev.track) lanes_.resize(ev.track + 1);
    auto& track_lanes = lanes_[ev.track];
    lane = -1;
    for (std::size_t l = 0; l < track_lanes.size(); ++l) {
      auto& open = track_lanes[l].open_ends;
      while (!open.empty() && open.back() <= ev.start_ns) open.pop_back();
      if (open.empty() || ev.end_ns() <= open.back()) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      track_lanes.emplace_back();
      lane = static_cast<int>(track_lanes.size()) - 1;
    }
    track_lanes[static_cast<std::size_t>(lane)].open_ends.push_back(
        ev.end_ns());
  }
  announce_lane(ev.track, lane);
  write_event(*os_, ev, track_pid_[ev.track], tid_of(ev.track, lane),
              &first_);
  ++events_written_;
}

std::size_t TraceStreamWriter::drain() {
  POLARIS_CHECK_MSG(!finished_, "drain after finish");
  batch_.clear();
  const detail::RingTable* table =
      tracer_->ring_table_.load(std::memory_order_acquire);
  std::uint64_t consumed = 0;
  if (table) {
    for (std::size_t t = 0; t < table->count; ++t) {
      detail::TrackRing& r = *table->rings[t];
      std::uint64_t lo = r.tail.load(std::memory_order_relaxed);
      const std::uint64_t hi = r.head.load(std::memory_order_acquire);
      consumed += hi - lo;
      for (; lo != hi; ++lo) {
        batch_.push_back(tracer_->decode(
            static_cast<TrackId>(t),
            r.buf[static_cast<std::size_t>(lo) & r.mask]));
      }
      if (consume_) r.tail.store(lo, std::memory_order_release);
    }
  }
  if (consume_) {
    tracer_->drained_events_.fetch_add(consumed,
                                       std::memory_order_relaxed);
  }
  // Within a batch the full-mode order is reproduced exactly; across
  // batches events stay grouped per drain (a long-lived span can land in
  // an overflow lane of an earlier-drained child — cosmetic only).
  std::stable_sort(batch_.begin(), batch_.end(), event_order);
  const std::size_t n = batch_.size();
  for (const TraceEvent& ev : batch_) emit_event(ev);
  batch_.clear();
  return n;
}

void TraceStreamWriter::finish() {
  if (finished_) return;
  drain();
  finished_ = true;
  *os_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::uint64_t trace_hash(const Tracer& tracer) {
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : json) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace polaris::obs
