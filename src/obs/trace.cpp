#include "polaris/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "polaris/support/check.hpp"

namespace polaris::obs {

TrackId Tracer::add_track(std::string process, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(Track{std::move(process), std::move(name)});
  return static_cast<TrackId>(tracks_.size() - 1);
}

SpanId Tracer::begin_span(TrackId track, std::string name,
                          std::string category) {
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kSpan;
  ev.start_ns = t;
  ev.dur_ns = -1;  // open
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
  return SpanId{events_.size() - 1};
}

void Tracer::end_span(SpanId id) {
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(id.valid() && id.index < events_.size());
  TraceEvent& ev = events_[id.index];
  POLARIS_CHECK_MSG(ev.open(), "end_span on a closed span");
  ev.dur_ns = t - ev.start_ns;
}

void Tracer::complete_span(TrackId track, std::string name,
                           std::string category, std::int64_t start_ns,
                           std::int64_t dur_ns) {
  POLARIS_CHECK(dur_ns >= 0);
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kSpan;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
}

void Tracer::instant(TrackId track, std::string name, std::string category) {
  instant_at(track, std::move(name), std::move(category), now_ns());
}

void Tracer::instant_at(TrackId track, std::string name,
                        std::string category, std::int64_t at_ns) {
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kInstant;
  ev.start_ns = at_ns;
  ev.dur_ns = 0;
  ev.name = std::move(name);
  ev.category = std::move(category);
  events_.push_back(std::move(ev));
}

void Tracer::counter(TrackId track, std::string name, double value) {
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  POLARIS_CHECK(track < tracks_.size());
  TraceEvent ev;
  ev.track = track;
  ev.kind = EventKind::kCounter;
  ev.start_ns = t;
  ev.dur_ns = 0;
  ev.value = value;
  ev.name = std::move(name);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t Tracer::track_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tracks_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::int64_t t = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = events_;
  for (TraceEvent& ev : out) {
    if (ev.open()) ev.dur_ns = std::max<std::int64_t>(t - ev.start_ns, 0);
  }
  return out;
}

std::vector<Tracer::Track> Tracer::tracks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

// ------------------------------------------------------------- JSON export

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microsecond timestamp with nanosecond precision kept as a fraction.
std::string format_us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

void write_metadata(std::ostream& os, const char* what, int pid, int tid,
                    const std::string& value, int sort_index, bool* first) {
  std::string name;
  append_escaped(name, value);
  if (!*first) os << ",\n";
  *first = false;
  os << R"({"ph":"M","pid":)" << pid;
  if (tid >= 0) os << R"(,"tid":)" << tid;
  os << R"(,"name":")" << what << R"(","args":{"name":")" << name
     << R"("}})";
  if (sort_index >= 0) {
    os << ",\n"
       << R"({"ph":"M","pid":)" << pid;
    if (tid >= 0) os << R"(,"tid":)" << tid;
    os << R"(,"name":")" << (tid >= 0 ? "thread_sort_index"
                                      : "process_sort_index")
       << R"(","args":{"sort_index":)" << sort_index << "}}";
  }
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  const std::vector<Track> tracks = this->tracks();

  // Process name -> pid, in first-registration order.
  std::map<std::string, int> pids;
  std::vector<std::string> pid_names;
  std::vector<int> track_pid(tracks.size(), 0);
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto [it, inserted] =
        pids.emplace(tracks[i].process, static_cast<int>(pids.size()));
    if (inserted) pid_names.push_back(tracks[i].process);
    track_pid[i] = it->second;
  }

  // Sort span/instant event indices per track by start time (counters are
  // emitted in recorded order; the viewer interpolates the series anyway).
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (events[a].track != events[b].track) {
                       return events[a].track < events[b].track;
                     }
                     if (events[a].start_ns != events[b].start_ns) {
                       return events[a].start_ns < events[b].start_ns;
                     }
                     // Longer spans first so parents precede children.
                     return events[a].dur_ns > events[b].dur_ns;
                   });

  // Lane allocation: spans that only nest share lane 0; a span that
  // partially overlaps every open lane gets a fresh lane.  Each (track,
  // lane) pair becomes one exported tid, so every exported timeline is
  // properly nested and Chrome renders it without warnings.
  struct Lane {
    std::vector<std::int64_t> open_ends;  // stack of enclosing span ends
  };
  std::vector<std::vector<Lane>> lanes(tracks.size());
  std::vector<int> event_lane(events.size(), 0);
  for (const std::size_t i : order) {
    const TraceEvent& ev = events[i];
    if (ev.kind != EventKind::kSpan) continue;
    auto& track_lanes = lanes[ev.track];
    int lane = -1;
    for (std::size_t l = 0; l < track_lanes.size(); ++l) {
      auto& open = track_lanes[l].open_ends;
      while (!open.empty() && open.back() <= ev.start_ns) open.pop_back();
      if (open.empty() || ev.end_ns() <= open.back()) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      track_lanes.emplace_back();
      lane = static_cast<int>(track_lanes.size()) - 1;
    }
    track_lanes[static_cast<std::size_t>(lane)].open_ends.push_back(
        ev.end_ns());
    event_lane[i] = lane;
  }

  // tid assignment: lanes of one track are adjacent; lane 0 keeps the
  // track's name, extra lanes get a ~n suffix.
  constexpr int kMaxLanesPerTrack = 64;
  auto tid_of = [&](TrackId track, int lane) {
    return static_cast<int>(track) * kMaxLanesPerTrack +
           std::min(lane, kMaxLanesPerTrack - 1);
  };

  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (int pid = 0; pid < static_cast<int>(pid_names.size()); ++pid) {
    write_metadata(os, "process_name", pid, -1, pid_names[static_cast<
                       std::size_t>(pid)], pid, &first);
  }
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    const std::size_t n_lanes = std::max<std::size_t>(lanes[t].size(), 1);
    for (std::size_t l = 0; l < n_lanes; ++l) {
      std::string name = tracks[t].name;
      if (l > 0) name += " ~" + std::to_string(l);
      write_metadata(os, "thread_name", track_pid[t],
                     tid_of(static_cast<TrackId>(t), static_cast<int>(l)),
                     name, tid_of(static_cast<TrackId>(t),
                                  static_cast<int>(l)),
                     &first);
    }
  }

  for (const std::size_t i : order) {
    const TraceEvent& ev = events[i];
    std::string name, cat;
    append_escaped(name, ev.name);
    append_escaped(cat, ev.category.empty() ? std::string("polaris")
                                            : ev.category);
    const int pid = track_pid[ev.track];
    const int tid = tid_of(ev.track, event_lane[i]);
    if (!first) os << ",\n";
    first = false;
    switch (ev.kind) {
      case EventKind::kSpan:
        os << R"({"ph":"X","pid":)" << pid << R"(,"tid":)" << tid
           << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"dur":)"
           << format_us(ev.dur_ns) << R"(,"name":")" << name
           << R"(","cat":")" << cat << R"("})";
        break;
      case EventKind::kInstant:
        os << R"({"ph":"i","pid":)" << pid << R"(,"tid":)" << tid
           << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"s":"t","name":")"
           << name << R"(","cat":")" << cat << R"("})";
        break;
      case EventKind::kCounter:
        os << R"({"ph":"C","pid":)" << pid << R"(,"tid":)" << tid
           << R"(,"ts":)" << format_us(ev.start_ns) << R"(,"name":")" << name
           << R"(","args":{"value":)" << ev.value << "}}";
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace polaris::obs
