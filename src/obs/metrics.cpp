#include "polaris/obs/metrics.hpp"

#include <iomanip>

namespace polaris::obs {

namespace {

/// Heterogeneous find-or-create so lookups with string_view do not allocate
/// when the metric already exists.
template <typename Map, typename Factory>
auto& find_or_create(Map& map, std::string_view name, Factory make) {
  if (auto it = map.find(name); it != map.end()) {
    return *it->second;
  }
  auto [it, inserted] = map.emplace(std::string(name), make());
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(histograms_, name,
                        [] { return std::make_unique<Histogram>(); });
}

LogHistogram& MetricsRegistry::log_histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(log_histograms_, name,
                        [] { return std::make_unique<LogHistogram>(); });
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         log_histograms_.size();
}

void MetricsRegistry::dump(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // One ordered pass per kind; std::map keeps each alphabetical.
  for (const auto& [name, c] : counters_) {
    os << name << " counter " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " gauge " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " histogram count=" << h->count() << " mean=" << h->mean()
       << " p50=" << h->percentile(50.0) << " p99=" << h->percentile(99.0)
       << " max=" << h->max() << "\n";
  }
  for (const auto& [name, h] : log_histograms_) {
    os << name << " loghist count=" << h->count() << " mean=" << h->mean()
       << " p50=" << h->percentile(50.0) << " p99=" << h->percentile(99.0)
       << " max=" << h->max() << "\n";
  }
}

}  // namespace polaris::obs
