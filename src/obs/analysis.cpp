#include "polaris/obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>
#include <unordered_map>

#include "polaris/des/time.hpp"

namespace polaris::obs {

TraceAnalysis::TraceAnalysis(const Tracer& tracer)
    : events_(tracer.snapshot()), tracks_(tracer.tracks()) {}

TraceAnalysis::TraceAnalysis(std::vector<TraceEvent> events,
                             std::vector<Tracer::Track> tracks)
    : events_(std::move(events)), tracks_(std::move(tracks)) {}

std::vector<std::size_t> TraceAnalysis::spans_in(
    std::string_view process) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    if (ev.kind != EventKind::kSpan) continue;
    if (!process.empty() && ev.track < tracks_.size() &&
        tracks_[ev.track].process != process) {
      continue;
    }
    idx.push_back(i);
  }
  return idx;
}

CriticalPath TraceAnalysis::critical_path(std::string_view process) const {
  CriticalPath path;
  std::vector<std::size_t> idx = spans_in(process);
  if (idx.empty()) return path;

  // Latest end first; the prefix of this order is "every span still running
  // at or after time t" as the backward walk lowers t.
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return events_[a].end_ns() > events_[b].end_ns();
  });
  std::int64_t t_begin = events_[idx[0]].start_ns;
  for (const std::size_t i : idx) {
    t_begin = std::min(t_begin, events_[i].start_ns);
  }
  const std::int64_t t_end = events_[idx[0]].end_ns();
  path.makespan_s = des::to_seconds(t_end - t_begin);

  // Backward walk.  At time t the chain extends with the active span of
  // earliest start (largest coverage); with none active it jumps across the
  // instrumentation gap to the latest span that ended before t.  Each span
  // is consumed at most once, so the walk is O(n log n).
  using StartKey = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<StartKey, std::vector<StartKey>, std::greater<>> active;
  std::size_t q = 0;  // prefix boundary into idx (spans with end >= t)
  std::int64_t t = t_end;
  std::int64_t covered_total = 0;
  while (t > t_begin) {
    while (q < idx.size() && events_[idx[q]].end_ns() >= t) {
      active.emplace(events_[idx[q]].start_ns, idx[q]);
      ++q;
    }
    // Entries whose start has caught up with t can never be active again.
    while (!active.empty() && active.top().first >= t) active.pop();

    std::size_t chosen;
    if (!active.empty()) {
      chosen = active.top().second;
      active.pop();
    } else if (q < idx.size()) {
      chosen = idx[q];  // latest end < t; re-enters the prefix as spent
    } else {
      break;
    }

    const TraceEvent& ev = events_[chosen];
    PathStep step;
    step.track = ev.track;
    step.name = ev.name;
    step.start_ns = ev.start_ns;
    step.end_ns = ev.end_ns();
    step.covered_ns = std::min(ev.end_ns(), t) - ev.start_ns;
    covered_total += step.covered_ns;
    path.steps.push_back(std::move(step));
    t = ev.start_ns;
  }
  std::reverse(path.steps.begin(), path.steps.end());
  path.length_s = des::to_seconds(covered_total);
  path.coverage =
      path.makespan_s > 0.0 ? path.length_s / path.makespan_s : 1.0;

  std::unordered_map<std::string, Contribution> by_name;
  for (const PathStep& step : path.steps) {
    Contribution& c = by_name[step.name];
    c.name = step.name;
    c.seconds += des::to_seconds(step.covered_ns);
    ++c.spans;
  }
  path.contributors.reserve(by_name.size());
  for (auto& [name, c] : by_name) {
    c.fraction = path.length_s > 0.0 ? c.seconds / path.length_s : 0.0;
    path.contributors.push_back(std::move(c));
  }
  std::sort(path.contributors.begin(), path.contributors.end(),
            [](const Contribution& a, const Contribution& b) {
              return a.seconds > b.seconds;
            });
  return path;
}

std::vector<Contribution> TraceAnalysis::total_by_name(
    std::string_view process) const {
  const std::vector<std::size_t> idx = spans_in(process);
  std::int64_t t_begin = 0, t_end = 0;
  bool any = false;
  std::unordered_map<std::string, Contribution> by_name;
  for (const std::size_t i : idx) {
    const TraceEvent& ev = events_[i];
    if (!any) {
      t_begin = ev.start_ns;
      t_end = ev.end_ns();
      any = true;
    } else {
      t_begin = std::min(t_begin, ev.start_ns);
      t_end = std::max(t_end, ev.end_ns());
    }
    Contribution& c = by_name[ev.name];
    c.name = ev.name;
    c.seconds += des::to_seconds(ev.dur_ns);
    ++c.spans;
  }
  const double makespan = des::to_seconds(t_end - t_begin);
  std::vector<Contribution> out;
  out.reserve(by_name.size());
  for (auto& [name, c] : by_name) {
    c.fraction = makespan > 0.0 ? c.seconds / makespan : 0.0;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const Contribution& a, const Contribution& b) {
              return a.seconds > b.seconds;
            });
  return out;
}

void TraceAnalysis::report(std::ostream& os, const CriticalPath& path,
                           std::size_t top_n) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "critical path: %.6f s of %.6f s makespan (%.1f%% covered, "
                "%zu steps)\n",
                path.length_s, path.makespan_s, 100.0 * path.coverage,
                path.steps.size());
  os << line;
  os << "top contributors:\n";
  std::size_t shown = 0;
  for (const Contribution& c : path.contributors) {
    if (shown++ >= top_n) break;
    std::snprintf(line, sizeof(line), "  %-24s %10.6f s  %5.1f%%  (%zu spans)\n",
                  c.name.c_str(), c.seconds, 100.0 * c.fraction, c.spans);
    os << line;
  }
}

}  // namespace polaris::obs
