#include "polaris/rt/runtime.hpp"

#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "polaris/coll/cost.hpp"
#include "polaris/rt/wait.hpp"
#include "polaris/support/check.hpp"

namespace polaris::rt {

namespace {

/// Tag space reserved for collective traffic.  User tags must be >= 0 and
/// below this.
constexpr int kCollTag = 0x4000'0000;

/// Shared-memory "fabric" characterization used for collective algorithm
/// selection (intra-node latencies/bandwidth of a 2002-class SMP).
fabric::LogGPParams shm_loggp() {
  fabric::LogGPParams p;
  p.L = 150e-9;
  p.o_s = 120e-9;
  p.o_r = 120e-9;
  p.g = 150e-9;
  p.G = 1.0 / 1.2e9;
  return p;
}

std::span<const std::byte> as_bytes(std::span<const double> d) {
  return {reinterpret_cast<const std::byte*>(d.data()), d.size_bytes()};
}

std::span<std::byte> as_writable_bytes(std::span<double> d) {
  return {reinterpret_cast<std::byte*>(d.data()), d.size_bytes()};
}

}  // namespace

// ------------------------------------------------------------- Communicator

SpscRing<detail::WireMsg>& Communicator::ring_to(int dst) {
  return *(*rings_)[static_cast<std::size_t>(rank_) * size_ + dst];
}

SpscRing<detail::WireMsg>& Communicator::ring_from(int src) {
  return *(*rings_)[static_cast<std::size_t>(src) * size_ + rank_];
}

void Communicator::push_with_progress(int dst, detail::WireMsg m) {
  auto& ring = ring_to(dst);
  IdleBackoff backoff;
  while (!ring.try_push(std::move(m))) {
    if (progress() != 0) backoff.reset();
    if (abort_flag_->load(std::memory_order_relaxed)) {
      throw std::runtime_error("polaris::rt: aborted (a peer rank failed)");
    }
    backoff.pause();
  }
}

void Communicator::send(int dst, int tag, std::span<const std::byte> data) {
  POLARIS_CHECK(dst >= 0 && dst < size_);
  POLARIS_CHECK_MSG(tag >= 0 && tag <= kCollTag,
                    "user tags must be non-negative");
  const bool eager = data.size() <= opts_.eager_threshold;
  obs::ScopedSpan span(tracer_, track_, "send",
                       eager ? "eager" : "rendezvous");
  if (sends_counter_) {
    sends_counter_->add();
    msg_bytes_->record(data.size());
  }
  if (dst == rank_) {
    deliver_local(tag, data);
    return;
  }
  if (eager) {
    ++eager_sends_;
    detail::WireMsg m;
    m.kind = detail::WireMsg::Kind::kEager;
    m.src = rank_;
    m.tag = tag;
    m.bytes = data.size();
    if (!data.empty()) {
      auto* buf = new std::byte[data.size()];
      std::memcpy(buf, data.data(), data.size());
      m.payload = buf;
    }
    push_with_progress(dst, m);
    return;
  }
  // Rendezvous: publish an RTS pointing at our buffer, then serve progress
  // until the receiver has pulled the payload.
  ++rendezvous_sends_;
  std::atomic<bool> pulled{false};
  detail::WireMsg m;
  m.kind = detail::WireMsg::Kind::kRts;
  m.src = rank_;
  m.tag = tag;
  m.bytes = data.size();
  m.payload = data.data();
  m.done_flag = &pulled;
  push_with_progress(dst, m);
  IdleBackoff backoff;
  while (!pulled.load(std::memory_order_acquire)) {
    if (progress() != 0) backoff.reset();
    if (abort_flag_->load(std::memory_order_relaxed)) {
      throw std::runtime_error("polaris::rt: aborted (a peer rank failed)");
    }
    backoff.pause();
  }
}

void Communicator::deliver_local(int tag, std::span<const std::byte> data) {
  detail::WireMsg m;
  m.kind = detail::WireMsg::Kind::kEager;
  m.src = rank_;
  m.tag = tag;
  m.bytes = data.size();
  if (!data.empty()) {
    auto* buf = new std::byte[data.size()];
    std::memcpy(buf, data.data(), data.size());
    m.payload = buf;
  }
  handle_incoming(m);
}

Request Communicator::irecv(int src, int tag, std::span<std::byte> out) {
  POLARIS_CHECK(src == msg::kAnySource || (src >= 0 && src < size_));
  auto state = std::make_shared<detail::PendingRecv>();
  state->out = out.data();
  state->capacity = out.size();
  state->src = src;
  state->tag = tag;

  const msg::RecvId id = next_recv_id_++;
  if (auto env = matcher_.post_recv(id, src, tag)) {
    complete_recv(*state, env->cookie);
    return Request(std::move(state));
  }
  pending_.emplace(id, state);
  return Request(std::move(state));
}

bool Communicator::test(Request& r) {
  POLARIS_CHECK_MSG(r.valid(), "test on an empty request");
  progress();
  return r.state_->done.load(std::memory_order_acquire);
}

RecvStatus Communicator::wait(Request& r) {
  POLARIS_CHECK_MSG(r.valid(), "wait on an empty request");
  obs::ScopedSpan span(tracer_, track_, "wait", "p2p");
  IdleBackoff backoff;
  while (!r.state_->done.load(std::memory_order_acquire)) {
    if (progress() != 0) backoff.reset();
    if (abort_flag_->load(std::memory_order_relaxed)) {
      throw std::runtime_error("polaris::rt: aborted (a peer rank failed)");
    }
    backoff.pause();
  }
  RecvStatus st;
  st.src = r.state_->src;
  st.tag = r.state_->tag;
  st.bytes = r.state_->received_bytes;
  r.state_.reset();
  return st;
}

RecvStatus Communicator::recv(int src, int tag, std::span<std::byte> out) {
  obs::ScopedSpan span(tracer_, track_, "recv", "p2p");
  Request r = irecv(src, tag, out);
  return wait(r);
}

std::size_t Communicator::progress() {
  std::size_t handled = 0;
  for (int src = 0; src < size_; ++src) {
    if (src == rank_) continue;
    auto& ring = ring_from(src);
    if (ring_depth_) {
      ring_depth_->observe_max(static_cast<double>(ring.size_approx()));
    }
    handled += ring.drain([this](detail::WireMsg&& m) { handle_incoming(m); });
  }
  return handled;
}

void Communicator::handle_incoming(const detail::WireMsg& m) {
  if (m.kind == detail::WireMsg::Kind::kAm) {
    am_table_.dispatch(m.am_handler, m.src,
                       {m.payload, static_cast<std::size_t>(m.bytes)});
    delete[] m.payload;
    return;
  }
  msg::Envelope<detail::WireMsg> env;
  env.src = m.src;
  env.tag = m.tag;
  env.bytes = m.bytes;
  env.cookie = m;
  if (auto rid = matcher_.arrive(std::move(env))) {
    const auto it = pending_.find(*rid);
    POLARIS_CHECK_MSG(it != pending_.end(), "matched recv with no state");
    auto state = it->second;
    pending_.erase(it);
    complete_recv(*state, m);
  }
  // else: unexpected; envelope (and payload/RTS pointer) parked in matcher.
}

void Communicator::complete_recv(detail::PendingRecv& pr,
                                 const detail::WireMsg& m) {
  POLARIS_CHECK_MSG(m.bytes <= pr.capacity,
                    "message larger than receive buffer");
  if (m.bytes > 0) {
    std::memcpy(pr.out, m.payload, m.bytes);
  }
  if (m.kind == detail::WireMsg::Kind::kEager) {
    delete[] m.payload;
  } else {  // kRts: release the spinning sender
    m.done_flag->store(true, std::memory_order_release);
  }
  pr.received_bytes = m.bytes;
  pr.src = m.src;
  pr.tag = m.tag;
  pr.done.store(true, std::memory_order_release);
}

msg::AmHandlerId Communicator::register_am(msg::AmHandler handler) {
  return am_table_.register_handler(std::move(handler));
}

void Communicator::am_send(int dst, msg::AmHandlerId handler,
                           std::span<const std::byte> payload) {
  POLARIS_CHECK(dst >= 0 && dst < size_);
  obs::ScopedSpan span(tracer_, track_, "am_send", "am");
  detail::WireMsg m;
  m.kind = detail::WireMsg::Kind::kAm;
  m.src = rank_;
  m.am_handler = handler;
  m.bytes = payload.size();
  if (!payload.empty()) {
    auto* buf = new std::byte[payload.size()];
    std::memcpy(buf, payload.data(), payload.size());
    m.payload = buf;
  }
  if (dst == rank_) {
    handle_incoming(m);
    return;
  }
  push_with_progress(dst, m);
}

// ------------------------------------------------------------ collectives

coll::Algorithm Communicator::pick(coll::Collective kind, std::size_t count,
                                   int root) const {
  return coll::select_algorithm(kind, static_cast<std::size_t>(size_), count,
                                sizeof(double), shm_loggp(), root);
}

void Communicator::run_schedule(const coll::Schedule& schedule,
                                std::span<double> buf, coll::ReduceOp op,
                                std::span<const double> input) {
  POLARIS_CHECK(schedule.ranks == static_cast<std::size_t>(size_));
  POLARIS_CHECK(buf.size() >= schedule.total_count);

  if (schedule.needs_local_copy) {
    POLARIS_CHECK_MSG(input.size() >= schedule.total_count,
                      "alltoall needs a full input buffer");
    const std::size_t block = schedule.total_count / schedule.ranks;
    std::memcpy(buf.data() + static_cast<std::size_t>(rank_) * block,
                input.data() + static_cast<std::size_t>(rank_) * block,
                block * sizeof(double));
  }

  for (const coll::CommStep& s : schedule.per_rank[rank_]) {
    Request recv_req;
    double* recv_dst = nullptr;
    if (s.has_recv()) {
      if (s.recv_reduce) {
        scratch_.resize(std::max(scratch_.size(), s.recv_count));
        recv_dst = scratch_.data();
      } else {
        recv_dst = buf.data() + s.recv_offset;
      }
      recv_req = irecv(
          s.recv_peer, kCollTag,
          as_writable_bytes(std::span<double>(recv_dst, s.recv_count)));
    }
    if (s.has_send()) {
      const double* base = s.send_from_input ? input.data() : buf.data();
      send(s.send_peer, kCollTag,
           as_bytes(std::span<const double>(base + s.send_offset,
                                            s.send_count)));
    }
    if (s.has_recv()) {
      wait(recv_req);
      if (s.recv_reduce) {
        double* dst = buf.data() + s.recv_offset;
        for (std::size_t i = 0; i < s.recv_count; ++i) {
          dst[i] = coll::combine(op, dst[i], scratch_[i]);
        }
      }
    }
  }
}

void Communicator::barrier() {
  obs::ScopedSpan span(tracer_, track_, "barrier", "coll");
  const auto schedule =
      coll::barrier(static_cast<std::size_t>(size_));
  double dummy = 0.0;
  run_schedule(schedule, {&dummy, 1}, coll::ReduceOp::kSum);
}

void Communicator::broadcast(std::span<double> buf, int root) {
  obs::ScopedSpan span(tracer_, track_, "broadcast", "coll");
  const auto a = pick(coll::Collective::kBroadcast, buf.size(), root);
  run_schedule(coll::broadcast(static_cast<std::size_t>(size_), buf.size(),
                               root, a),
               buf, coll::ReduceOp::kSum);
}

void Communicator::reduce(std::span<double> buf, coll::ReduceOp op,
                          int root) {
  obs::ScopedSpan span(tracer_, track_, "reduce", "coll");
  const auto a = pick(coll::Collective::kReduce, buf.size(), root);
  run_schedule(
      coll::reduce(static_cast<std::size_t>(size_), buf.size(), root, a),
      buf, op);
}

void Communicator::allreduce(std::span<double> buf, coll::ReduceOp op) {
  obs::ScopedSpan span(tracer_, track_, "allreduce", "coll");
  const auto a = pick(coll::Collective::kAllreduce, buf.size(), 0);
  run_schedule(coll::allreduce(static_cast<std::size_t>(size_), buf.size(), a),
               buf, op);
}

void Communicator::allgather(std::span<double> buf, std::size_t block) {
  obs::ScopedSpan span(tracer_, track_, "allgather", "coll");
  POLARIS_CHECK(buf.size() >= block * static_cast<std::size_t>(size_));
  const auto a = pick(coll::Collective::kAllgather, block, 0);
  run_schedule(coll::allgather(static_cast<std::size_t>(size_), block, a),
               buf, coll::ReduceOp::kSum);
}

void Communicator::alltoall(std::span<const double> in,
                            std::span<double> out, std::size_t block) {
  obs::ScopedSpan span(tracer_, track_, "alltoall", "coll");
  POLARIS_CHECK(in.size() >= block * static_cast<std::size_t>(size_));
  POLARIS_CHECK(out.size() >= block * static_cast<std::size_t>(size_));
  run_schedule(coll::alltoall(static_cast<std::size_t>(size_), block,
                              coll::Algorithm::kPairwise),
               out, coll::ReduceOp::kSum, in);
}

void Communicator::reduce_scatter(std::span<double> buf, coll::ReduceOp op,
                                  std::size_t block) {
  obs::ScopedSpan span(tracer_, track_, "reduce_scatter", "coll");
  POLARIS_CHECK(buf.size() >= block * static_cast<std::size_t>(size_));
  const auto a = pick(coll::Collective::kReduceScatter, block, 0);
  run_schedule(
      coll::reduce_scatter(static_cast<std::size_t>(size_), block, a), buf,
      op);
}

void Communicator::scan(std::span<double> buf, coll::ReduceOp op) {
  obs::ScopedSpan span(tracer_, track_, "scan", "coll");
  run_schedule(coll::scan(static_cast<std::size_t>(size_), buf.size()), buf,
               op);
}

// ------------------------------------------------------------------ ShmWorld

ShmWorld::ShmWorld(int ranks, ShmOptions opts) : size_(ranks) {
  POLARIS_CHECK(ranks >= 1);
  rings_.resize(static_cast<std::size_t>(ranks) * ranks);
  for (auto& r : rings_) {
    r = std::make_unique<SpscRing<detail::WireMsg>>(opts.ring_capacity);
  }
  comms_.resize(ranks);
  for (int i = 0; i < ranks; ++i) {
    comms_[i] = std::unique_ptr<Communicator>(new Communicator());
    comms_[i]->rank_ = i;
    comms_[i]->size_ = ranks;
    comms_[i]->opts_ = opts;
    comms_[i]->rings_ = &rings_;
    comms_[i]->abort_flag_ = &abort_flag_;
  }
}

ShmWorld::~ShmWorld() = default;

Communicator& ShmWorld::comm(int rank) {
  POLARIS_CHECK(rank >= 0 && rank < size_);
  return *comms_[rank];
}

void ShmWorld::attach_tracer(obs::Tracer& tracer) {
  for (auto& c : comms_) {
    c->tracer_ = &tracer;
    c->track_ =
        tracer.add_track("ranks", "rank " + std::to_string(c->rank_));
  }
}

void ShmWorld::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  obs_ = obs::ShardedRegistry(static_cast<std::size_t>(size_));
  h_msg_bytes_ = obs_.log_histogram("rt.msg_bytes");
  for (auto& c : comms_) {
    c->sends_counter_ = &metrics.counter("rt.sends");
    c->msg_bytes_ =
        &obs_.shard(static_cast<std::size_t>(c->rank_)).hist(h_msg_bytes_);
    c->ring_depth_ = &metrics.gauge("rt.ring_depth_max");
  }
}

void ShmWorld::run(const std::function<void(Communicator&)>& fn) {
  abort_flag_.store(false);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort_flag_.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  if (metrics_) {
    std::uint64_t eager = 0, rendezvous = 0;
    for (const auto& c : comms_) {
      eager += c->eager_sends_;
      rendezvous += c->rendezvous_sends_;
    }
    metrics_->gauge("rt.eager_sends").set(static_cast<double>(eager));
    metrics_->gauge("rt.rendezvous_sends")
        .set(static_cast<double>(rendezvous));
    // Rank threads are joined: fold the per-rank shards into the shared
    // registry and clear them so repeated run() calls accumulate exactly
    // once per send.
    metrics_->log_histogram("rt.msg_bytes").merge_from(obs_.merged(h_msg_bytes_));
    obs_.reset();
  }
}

}  // namespace polaris::rt
