// Lock-free single-producer/single-consumer ring buffer.
//
// The wire of the shared-memory transport: each ordered rank pair owns one
// ring, so SPSC is exact — the sender thread is the only producer, the
// receiver thread the only consumer.  Classic Lamport queue with C++11
// acquire/release atomics and cache-line-separated indices.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::rt {

// Fixed rather than std::hardware_destructive_interference_size: the
// constant participates in layout, and the std value varies with -mtune.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity must be a power of two (one slot is kept empty, so the ring
  /// holds capacity-1 elements).
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    POLARIS_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                      "ring capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when full.
  bool try_push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[head] = value;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = slots_[tail];
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness snapshot (exact for the consumer thread).
  bool empty() const {
    return tail_.load(std::memory_order_relaxed) ==
           head_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (safe to call from either side).
  std::size_t size_approx() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (h - t) & mask_;
  }

  std::size_t capacity() const { return mask_; }  // usable slots

 private:
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // producer writes
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // consumer writes
  std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace polaris::rt
