// Lock-free single-producer/single-consumer ring buffer.
//
// The wire of the shared-memory transport: each ordered rank pair owns one
// ring, so SPSC is exact — the sender thread is the only producer, the
// receiver thread the only consumer.  Classic Lamport queue with C++11
// acquire/release atomics and cache-line-separated indices; the read-mostly
// fields (mask_, slots_) sit on their own cache line so a producer reading
// the mask never pulls the consumer's freshly-written tail line.
//
// Batched try_push_n/try_pop_n amortize the index round-trip: one acquire
// load and one release store cover the whole batch, so draining a deep ring
// costs two fences instead of two per element.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::rt {

// Fixed rather than std::hardware_destructive_interference_size: the
// constant participates in layout, and the std value varies with -mtune.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity must be a power of two (one slot is kept empty, so the ring
  /// holds capacity-1 elements).
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    POLARIS_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                      "ring capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when full.
  bool try_push(const T& value) {
    return emplace_impl([&](T& slot) { slot = value; });
  }

  /// Producer side, move flavour: message descriptors that own payload
  /// pointers transfer them instead of copying.
  bool try_push(T&& value) {
    return emplace_impl([&](T& slot) { slot = std::move(value); });
  }

  /// Producer side, in-place construction of the pushed value.
  template <typename... Args>
  bool try_emplace(Args&&... args) {
    return emplace_impl(
        [&](T& slot) { slot = T(std::forward<Args>(args)...); });
  }

  /// Producer side, batched: moves up to `n` values from `src` into the
  /// ring under a single index update.  Returns how many were pushed
  /// (0 when full; may be < n when nearly full).
  std::size_t try_push_n(T* src, std::size_t n) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free_slots = mask_ - ((head - tail) & mask_);
    const std::size_t k = std::min(n, free_slots);
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(head + i) & mask_] = std::move(src[i]);
    }
    if (k != 0) head_.store((head + k) & mask_, std::memory_order_release);
    return k;
  }

  /// Consumer side.  Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: moves up to `max` values into `dst` under a
  /// single index update.  Returns how many were popped (0 when empty).
  std::size_t try_pop_n(T* dst, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = (head - tail) & mask_;
    const std::size_t k = std::min(max, avail);
    for (std::size_t i = 0; i < k; ++i) {
      dst[i] = std::move(slots_[(tail + i) & mask_]);
    }
    if (k != 0) tail_.store((tail + k) & mask_, std::memory_order_release);
    return k;
  }

  /// Consumer side: drains the ring empty in fixed-size batches, invoking
  /// `fn(T&&)` once per element in FIFO order.  One acquire/release index
  /// round-trip per batch instead of per element, so deep rings drain at
  /// memcpy-like cost.  Returns the number of elements drained.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    constexpr std::size_t kBatch = 32;
    T batch[kBatch];
    std::size_t total = 0;
    for (;;) {
      const std::size_t n = try_pop_n(batch, kBatch);
      if (n == 0) return total;
      for (std::size_t i = 0; i < n; ++i) fn(std::move(batch[i]));
      total += n;
    }
  }

  /// Consumer side: pops one value, idling via `backoff.pause()` (see
  /// rt::IdleBackoff: spin, then yield, then park) while the ring is empty
  /// so a quiet wire does not busy-burn a core.  `stopped()` is polled once
  /// per idle iteration; returns false if it turns true before a value
  /// arrives.  Resets the backoff ladder on success.
  template <typename Backoff, typename Stop>
  bool pop_wait(T& out, Backoff& backoff, Stop&& stopped) {
    while (!try_pop(out)) {
      if (stopped()) return false;
      backoff.pause();
    }
    backoff.reset();
    return true;
  }

  /// Consumer-side emptiness snapshot (exact for the consumer thread).
  bool empty() const {
    return tail_.load(std::memory_order_relaxed) ==
           head_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (safe to call from either side).
  std::size_t size_approx() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (h - t) & mask_;
  }

  std::size_t capacity() const { return mask_; }  // usable slots

 private:
  template <typename Store>
  bool emplace_impl(Store&& store) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    store(slots_[head]);
    head_.store(next, std::memory_order_release);
    return true;
  }

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // producer writes
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // consumer writes
  alignas(kCacheLine) std::size_t mask_;  // read-only after construction
  std::vector<T> slots_;
};

}  // namespace polaris::rt
