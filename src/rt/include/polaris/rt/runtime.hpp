// Real threaded runtime: user-level messaging over shared memory.
//
// ShmWorld runs one OS thread per rank; ranks exchange messages through
// per-pair lock-free rings exactly the way a user-level NIC library
// exchanges descriptors through queue pairs:
//   eager       — payload copied into a transport buffer at send time;
//                 the send completes immediately (one copy, as on a NIC
//                 bounce buffer).
//   rendezvous  — the ring carries an RTS descriptor pointing at the
//                 sender's buffer; when the receive is posted, the receiver
//                 pulls the payload directly (zero-copy, the shared-memory
//                 analogue of RDMA read) and signals the sender's
//                 completion flag.
// Tag matching, protocol choice and collective schedules are the same code
// the simulated runtime uses (polaris::msg / polaris::coll).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "polaris/coll/algorithms.hpp"
#include "polaris/coll/local_exec.hpp"
#include "polaris/msg/active_msg.hpp"
#include "polaris/msg/completion.hpp"
#include "polaris/msg/tag_matcher.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/sharded.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/rt/spsc_ring.hpp"

namespace polaris::rt {

/// Tunables for a ShmWorld.
struct ShmOptions {
  std::size_t eager_threshold = 8 * 1024;  ///< bytes; larger => rendezvous
  std::size_t ring_capacity = 1024;        ///< descriptors per rank pair
  /// Algorithm override for collectives; unset => per-call selection.
  bool fixed_algorithms = false;
};

class Communicator;

namespace detail {

/// Descriptor travelling through a ring.
struct WireMsg {
  enum class Kind : std::uint8_t { kEager, kRts, kAm };
  Kind kind = Kind::kEager;
  int src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  /// kEager/kAm: heap payload owned by the message (receiver frees).
  /// kRts: the sender's user buffer (receiver pulls from it).
  const std::byte* payload = nullptr;
  /// kRts: sender-side completion flag the receiver releases.
  std::atomic<bool>* done_flag = nullptr;
  /// kAm: handler index.
  std::uint32_t am_handler = 0;
};

struct PendingRecv {
  std::byte* out = nullptr;
  std::size_t capacity = 0;
  std::atomic<bool> done{false};
  std::uint64_t received_bytes = 0;
  int src = -1;
  int tag = -1;
};

}  // namespace detail

/// Handle for a nonblocking operation.  Requests are owned by the
/// issuing Communicator and recycled after wait()/successful test().
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::PendingRecv> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::PendingRecv> state_;
};

/// Status of a completed receive.
struct RecvStatus {
  int src = -1;
  int tag = -1;
  std::uint64_t bytes = 0;
};

/// Per-rank endpoint + MPI-flavoured API.  Each Communicator is owned and
/// driven by exactly one rank thread; cross-thread interaction happens only
/// through the rings and atomic completion flags.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  // -- point to point --------------------------------------------------------
  void send(int dst, int tag, std::span<const std::byte> data);
  RecvStatus recv(int src, int tag, std::span<std::byte> out);

  Request irecv(int src, int tag, std::span<std::byte> out);
  bool test(Request& r);
  RecvStatus wait(Request& r);

  // -- active messages -------------------------------------------------------
  /// Handlers must be registered before ShmWorld::run() spawns ranks (the
  /// table is per-rank; register identical handlers on every rank).
  msg::AmHandlerId register_am(msg::AmHandler handler);
  void am_send(int dst, msg::AmHandlerId handler,
               std::span<const std::byte> payload);
  std::uint64_t am_dispatched() const { return am_table_.dispatched(); }

  // -- collectives (double element type) --------------------------------------
  void barrier();
  void broadcast(std::span<double> buf, int root);
  void reduce(std::span<double> buf, coll::ReduceOp op, int root);
  void allreduce(std::span<double> buf, coll::ReduceOp op);
  /// buf holds size()*block doubles; this rank's contribution at
  /// [rank*block, (rank+1)*block).
  void allgather(std::span<double> buf, std::size_t block);
  /// out/in hold size()*block doubles each.
  void alltoall(std::span<const double> in, std::span<double> out,
                std::size_t block);
  /// buf holds size()*block doubles; afterwards this rank's block
  /// [rank*block, (rank+1)*block) holds its slice of the reduction.
  void reduce_scatter(std::span<double> buf, coll::ReduceOp op,
                      std::size_t block);
  /// Inclusive prefix reduction by rank order.
  void scan(std::span<double> buf, coll::ReduceOp op);

  /// Executes an arbitrary schedule (collective building block).
  void run_schedule(const coll::Schedule& schedule, std::span<double> buf,
                    coll::ReduceOp op,
                    std::span<const double> input = {});

  /// Drives incoming traffic; called automatically inside blocking ops.
  /// Returns the number of descriptors handled (blocking ops use a nonzero
  /// return to reset their idle backoff).
  std::size_t progress();

  // -- introspection -----------------------------------------------------------
  const msg::MatchStats& match_stats() const { return matcher_.stats(); }
  std::uint64_t eager_sends() const { return eager_sends_; }
  std::uint64_t rendezvous_sends() const { return rendezvous_sends_; }

  /// This rank's trace track (valid after ShmWorld::attach_tracer); rank
  /// code may add its own spans around application phases.
  obs::Tracer* tracer() const { return tracer_; }
  obs::TrackId track() const { return track_; }

 private:
  friend class ShmWorld;
  Communicator() = default;

  SpscRing<detail::WireMsg>& ring_to(int dst);
  SpscRing<detail::WireMsg>& ring_from(int src);
  void push_with_progress(int dst, detail::WireMsg m);
  void handle_incoming(const detail::WireMsg& m);
  void complete_recv(detail::PendingRecv& pr, const detail::WireMsg& m);
  void deliver_local(int tag, std::span<const std::byte> data);
  coll::Algorithm pick(coll::Collective kind, std::size_t count,
                       int root) const;

  int rank_ = 0;
  int size_ = 0;
  ShmOptions opts_;
  // rings_[s * size + d]: ring from rank s to rank d (shared, world-owned).
  std::vector<std::unique_ptr<SpscRing<detail::WireMsg>>>* rings_ = nullptr;

  msg::TagMatcher<detail::WireMsg> matcher_;
  std::unordered_map<msg::RecvId, std::shared_ptr<detail::PendingRecv>>
      pending_;
  std::uint64_t next_recv_id_ = 1;
  std::atomic<bool>* abort_flag_ = nullptr;
  std::vector<double> scratch_;
  msg::ActiveMessageTable am_table_;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rendezvous_sends_ = 0;

  // Observability hooks; null until ShmWorld::attach_* is called, and every
  // instrumented path branches on that (zero cost when unobserved).
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Gauge* ring_depth_ = nullptr;
  obs::Counter* sends_counter_ = nullptr;
  // This rank's shard of the world's ShardedRegistry: recorded from the
  // rank's own thread with plain stores, merged after run().
  obs::LogHistogram* msg_bytes_ = nullptr;
};

/// Spawns `ranks` threads, each running `fn(Communicator&)`, and joins.
/// The first exception thrown by any rank is rethrown from run().
class ShmWorld {
 public:
  explicit ShmWorld(int ranks, ShmOptions opts = {});
  ~ShmWorld();

  int size() const { return size_; }

  /// Runs one SPMD program across all ranks.  May be called repeatedly;
  /// communicator state persists between runs.
  void run(const std::function<void(Communicator&)>& fn);

  /// Access a rank's communicator between runs (e.g. to register AM
  /// handlers or read stats).  Do not call while run() is active.
  Communicator& comm(int rank);

  /// Attaches a tracer (use an obs::WallClock): one track per rank with
  /// spans around sends, receives, waits and collectives, stamped in real
  /// time from each rank's own thread.  Call before run().
  void attach_tracer(obs::Tracer& tracer);

  /// Attaches a metrics registry: send counters and size histograms updated
  /// live from rank threads, a ring-occupancy high-water gauge sampled in
  /// progress(), and eager/rendezvous totals mirrored after each run().
  void attach_metrics(obs::MetricsRegistry& metrics);

 private:
  int size_;
  std::atomic<bool> abort_flag_{false};
  std::vector<std::unique_ptr<SpscRing<detail::WireMsg>>> rings_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ShardedRegistry obs_{1};  ///< one shard per rank (attach_metrics)
  obs::ShardedRegistry::HistId h_msg_bytes_{};
};

}  // namespace polaris::rt
