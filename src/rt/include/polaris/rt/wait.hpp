// Waiting primitives for threads that expect work "soon".
//
// Both the shared-memory transport and the pdes shard workers sit in loops
// whose next item usually arrives within microseconds but occasionally not
// for milliseconds (a peer descheduled, a quiet simulation window).  A bare
// spin burns a core — and on an oversubscribed machine actively *delays*
// the producer it is waiting for; a bare sleep adds wakeup latency to the
// common fast case.  IdleBackoff escalates through the standard ladder:
// cpu-relax spins (cheap, keeps the line in cache), sched yields (lets a
// same-core producer run — critical when workers > cores), then short
// parked sleeps (stops burning the core entirely).  Any successful wait
// resets the ladder.
//
// SpinBarrier is a sense-reversing barrier over IdleBackoff with a serial
// section: the last thread to arrive runs a caller-supplied closure while
// every other participant is parked, then releases the generation.  This is
// exactly the shape of a conservative PDES window boundary — N shard
// workers quiesce, one thread picks the next safe window, everyone resumes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace polaris::rt {

/// Escalating idle-wait policy: spin, then yield, then park in short
/// sleeps.  Not thread-safe; each waiting thread owns one instance (or one
/// per wait site).  reset() after every successful wait.
class IdleBackoff {
 public:
  /// Ladder geometry.  Spins cover sub-microsecond waits, yields cover
  /// "producer is runnable on this core", parks cover genuinely idle
  /// periods at ~20us wakeup granularity.
  static constexpr std::uint32_t kSpinIters = 64;
  static constexpr std::uint32_t kYieldIters = 64;
  static constexpr std::uint32_t kParkMicros = 20;

  /// One idle iteration; escalates with consecutive calls since reset().
  void pause() {
    const std::uint32_t i = idle_iters_++;
    if (i < kSpinIters) {
      cpu_relax();
    } else if (i < kSpinIters + kYieldIters) {
      std::this_thread::yield();
    } else {
      ++parks_;
      std::this_thread::sleep_for(std::chrono::microseconds(kParkMicros));
    }
  }

  /// Call after a successful wait: the next idle period starts spinning.
  void reset() { idle_iters_ = 0; }

  /// Times this backoff reached the parked (sleeping) tier; an
  /// observability proxy for "how often was this thread genuinely idle".
  std::uint64_t parks() const { return parks_; }

  /// One pipeline-friendly busy-wait hint (PAUSE/YIELD instruction).
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::uint32_t idle_iters_ = 0;
  std::uint64_t parks_ = 0;
};

/// Sense-reversing barrier for a fixed set of participants, waiting via
/// IdleBackoff (spin -> yield -> park) instead of a futex, with an optional
/// serial section run by exactly the last arriver of each generation.
///
/// Memory ordering: everything written by a participant before
/// arrive_and_wait() is visible to every participant after it returns
/// (arrivals publish with acq_rel, waiters acquire the generation bump), so
/// the serial closure may freely read all participants' window state and
/// its writes are visible to everyone after release.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants) : n_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  std::size_t participants() const { return n_; }

  /// Blocks until all participants arrive.  The last arriver runs
  /// `serial()` before releasing the others.
  template <typename Fn>
  void arrive_and_wait(Fn&& serial) {
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      serial();
      arrived_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
      return;
    }
    IdleBackoff backoff;
    while (gen_.load(std::memory_order_acquire) == gen) backoff.pause();
    parks_.fetch_add(backoff.parks(), std::memory_order_relaxed);
  }

  void arrive_and_wait() {
    arrive_and_wait([] {});
  }

  /// Total parked sleeps across all waits (idle-time observability).
  std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::size_t n_;
};

}  // namespace polaris::rt
