// LogGP parameter extraction and prediction.
//
// LogGP (Alexandrov et al.) characterizes a messaging system by
//   L  — wire latency,
//   o  — CPU overhead per message (send/recv split here),
//   g  — minimum gap between messages (1/message-rate),
//   G  — gap per byte (1/bandwidth) for long messages.
// The user-level-messaging story of the talk is exactly a LogGP story:
// OS-bypass NICs collapse o and g by an order of magnitude while kernel
// fabrics are overhead-dominated regardless of wire speed.
#pragma once

#include <cstdint>

#include "polaris/fabric/params.hpp"

namespace polaris::fabric {

struct LogGPParams {
  double L = 0.0;    ///< end-to-end wire+switch latency, seconds
  double o_s = 0.0;  ///< send overhead
  double o_r = 0.0;  ///< receive overhead
  double g = 0.0;    ///< inter-message gap
  double G = 0.0;    ///< per-byte gap (seconds/byte)

  /// Predicted one-way time for a k-byte message:
  /// o_s + L + (k-1)G + o_r.
  double one_way(std::uint64_t bytes) const;

  /// Half of predicted ping-pong round trip (equals one_way here; kept for
  /// symmetry with measured-latency reporting).
  double half_round_trip(std::uint64_t bytes) const { return one_way(bytes); }

  /// Peak small-message rate: 1/max(g, o_s).
  double message_rate() const;

  /// Asymptotic bandwidth 1/G.
  double bandwidth() const { return 1.0 / G; }
};

/// Derives LogGP parameters for a fabric across `switch_hops` switches.
/// Kernel-path fabrics fold one staging copy per side into o (size-
/// dependent terms ride G via the min of wire and copy bandwidth).
LogGPParams extract_loggp(const FabricParams& p, int switch_hops = 1);

}  // namespace polaris::fabric
