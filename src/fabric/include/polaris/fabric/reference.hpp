// Semaphore-reference replica of the packet-level network model.
//
// This is a faithful copy of the pre-two-tier SimNetwork data path: one
// spawned coroutine per packet, a des::Semaphore per directed link, a
// route-vector copy per packet, ~3 engine events plus two semaphore
// suspensions per hop per packet.  It exists for exactly two purposes:
//
//  1. Equivalence proof: tests/fabric drives randomized traffic through
//     both this model and SimNetwork on the same topologies and asserts
//     bit-identical simulated completion times (the two-tier engine is an
//     optimization, not a remodel).
//  2. Perf baseline: bench_d2_fabric measures messages/sec against this
//     model to record the data-path speedup in BENCH_FABRIC.json.
//
// It intentionally shares no code with SimNetwork so a bug in the new
// data path cannot hide in a shared helper.  The only deliberate updates
// from the historical code are semantic fixes that apply to both models:
// zero-byte transfers pay propagation only (no fake 1-byte serialization),
// and link busy time accumulates in integer ticks so equality checks are
// exact.  Not used by any production path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/sync.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"

namespace polaris::fabric {

class ReferenceNetwork {
 public:
  static constexpr std::uint32_t kMaxPackets = SimNetwork::kMaxPackets;
  static constexpr std::size_t kCircuitsPerSource =
      SimNetwork::kCircuitsPerSource;

  ReferenceNetwork(des::Engine& engine, FabricParams params,
                   const Topology& topology);

  /// Same contract as SimNetwork::transfer.
  des::Task<void> transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  const FabricParams& params() const { return params_; }
  des::Engine& engine() { return engine_; }
  const NetworkStats& stats() const { return stats_; }

  /// Busy seconds accumulated on one link (serialization occupancy).
  double link_busy_seconds(LinkId id) const;

 private:
  struct PacketPlan {
    std::uint32_t count;
    std::uint64_t bytes_per_packet;
  };
  PacketPlan plan_packets(std::uint64_t bytes) const;

  des::Task<void> send_packet(std::vector<LinkId> path,
                              std::uint64_t pkt_bytes);
  des::Task<void> ensure_circuit(NodeId src, NodeId dst);

  des::SimTime serialize_time(std::uint64_t bytes) const {
    return des::from_seconds(static_cast<double>(bytes) / params_.link_bw);
  }

  des::Engine& engine_;
  FabricParams params_;
  const Topology& topo_;
  std::vector<std::unique_ptr<des::Semaphore>> links_;
  std::vector<des::SimTime> link_busy_ticks_;
  NetworkStats stats_;

  // Same exact-LRU circuit cache as SimNetwork (hit/miss pattern must
  // match for the equivalence runs with circuit_setup > 0).
  struct CircuitCache {
    std::vector<NodeId> lru;  // front = most recent
  };
  std::vector<CircuitCache> circuits_;
};

}  // namespace polaris::fabric
