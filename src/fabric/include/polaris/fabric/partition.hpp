// Shard partitioning of a simulated machine for parallel DES.
//
// A partition assigns every host (rank + NIC) to exactly one shard; shard
// boundaries cut only fabric links, never a host's attachment to its NIC.
// The cut links are what make conservative parallel simulation work: any
// cross-shard interaction must traverse at least one switch hop of
// simulated fabric, so a message generated at time t cannot take effect on
// another shard before t + lookahead, and every shard may safely simulate
// a window of that width without hearing from its peers.
//
// The lookahead is derived from the fabric parameters, not configured: the
// minimum cross-shard path is min_cut_switch_hops switch traversals, and
// path_latency() of that hop count is wire physics no message can beat.
// Host-side overheads (o_send) are deliberately excluded — NACKs generated
// at a dead node's NIC pay wire latency only, and the bound must cover
// them too.
//
// ShardHandoff is the serialized form a cross-shard message takes on an
// rt::SpscRing between shard workers: a fixed-size trivially-copyable
// record, so channels never allocate and a push is a 40-byte store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"

namespace polaris::fabric {

/// What a cross-shard handoff record carries.
enum class HandoffKind : std::uint8_t {
  kPayload = 0,  ///< application bytes arriving at dst
  kNack = 1,     ///< delivery failure report returning to src
};

/// One cross-shard message on the wire between shard workers.  Timestamped
/// with its simulated *arrival* time at the destination host; `seq` is the
/// sender-channel sequence number that (with src/phase/kind) makes the
/// destination's ingestion order canonical regardless of shard count.
struct ShardHandoff {
  std::int64_t t = 0;        ///< arrival time at dst, engine ticks
  std::uint64_t bytes = 0;   ///< payload size (0 for control)
  std::uint32_t src = 0;     ///< originating rank (global NodeId)
  std::uint32_t dst = 0;     ///< destination rank (global NodeId)
  std::uint32_t phase = 0;   ///< sender's program phase when issued
  std::uint32_t seq = 0;     ///< per-channel sequence number
  std::uint8_t kind = 0;     ///< HandoffKind
  std::uint8_t status = 0;   ///< XferStatus payload for kNack
  std::uint8_t lane = 0;     ///< app-defined sub-channel (halo direction)
  std::uint8_t pad[5] = {};  ///< explicit tail padding
};
static_assert(sizeof(ShardHandoff) == 40, "handoff record layout drifted");
static_assert(std::is_trivially_copyable_v<ShardHandoff>,
              "handoffs must memcpy across ring channels");

/// A block partition of a topology's hosts into contiguous shards.
struct Partition {
  std::size_t shards = 1;
  /// first_node[s] .. first_node[s+1]-1 are shard s's hosts
  /// (first_node.size() == shards + 1, last entry == node_count).
  std::vector<NodeId> first_node;
  /// Ordered host pairs split across shards (diagnostic: how much of the
  /// machine's pairwise traffic could cross a boundary).
  std::uint64_t cut_host_pairs = 0;
  /// Minimum switch hops on any cross-shard host-to-host path.
  std::size_t min_cut_switch_hops = 1;
  /// Conservative window width: no cross-shard effect can occur sooner
  /// than this after its cause (seconds).
  double lookahead_s = 0.0;

  std::size_t shard_of(NodeId n) const {
    // Shards are contiguous and near-equal: jump to the estimate, then
    // correct by at most one step (remainder ranks skew block sizes by 1).
    const std::size_t total = first_node.back();
    std::size_t s = static_cast<std::size_t>(n) * shards / total;
    while (n < first_node[s]) --s;
    while (n >= first_node[s + 1]) ++s;
    return s;
  }

  std::size_t shard_size(std::size_t s) const {
    return first_node[s + 1] - first_node[s];
  }
};

/// Splits `topo`'s hosts into `shards` contiguous near-equal blocks and
/// derives the conservative lookahead from `params`.  Contiguous NodeId
/// blocks follow each topology's locality order (rows of a torus, pods of
/// a fat tree), so boundary cuts are a small fraction of traffic for
/// neighbor-dominated workloads.
Partition make_block_partition(const Topology& topo,
                               const FabricParams& params,
                               std::size_t shards);

/// Topology-free flavour for machines described only by host count and
/// grid extents (empty dims = single-switch/tree-style fabric).  The
/// million-node pdes configurations use this: instantiating a real
/// Topology eagerly builds every link's hash-map entry, which at 10^6
/// hosts costs gigabytes for routes the closed-form model never walks.
Partition make_block_partition(std::size_t nodes,
                               const std::vector<std::size_t>& dims,
                               const FabricParams& params,
                               std::size_t shards);

}  // namespace polaris::fabric
