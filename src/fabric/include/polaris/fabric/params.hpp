// Commodity fabric parameter sets.
//
// Each FabricParams instance describes one interconnect generation of the
// 2002 commodity-cluster landscape, split into wire-side parameters (used
// by the packet-level network model) and host-side parameters (used by the
// user-level messaging layer: CPU overheads, OS-bypass and RDMA capability,
// copy and registration costs).  Preset values follow contemporaneous
// published microbenchmarks (netperf/NetPIPE/Pallas-class measurements of
// the era), rounded — see DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace polaris::fabric {

struct FabricParams {
  std::string name;

  // -- wire side ------------------------------------------------------------
  double link_bw = 125e6;        ///< per-link bandwidth, bytes/s
  double wire_latency = 100e-9;  ///< per-link propagation, seconds
  double switch_latency = 1e-6;  ///< per-switch-hop forwarding delay
  std::uint32_t mtu = 1500;      ///< packet payload size

  // -- host / NIC side -------------------------------------------------------
  double o_send = 10e-6;   ///< CPU time consumed to issue a send
  double o_recv = 10e-6;   ///< CPU time consumed to land a receive
  double gap = 12e-6;      ///< minimum inter-message gap (1/message-rate)
  bool os_bypass = false;  ///< user-level NIC access (no kernel crossing)
  bool rdma = false;       ///< remote DMA: true zero-copy one-sided put/get
  double copy_bw = 1.0e9;  ///< host memcpy bandwidth for staging copies

  /// Memory registration (pin-down) cost: base + per-4KiB-page component.
  /// Zero for fabrics whose NIC does not require registration.
  double reg_base = 0.0;
  double reg_per_page = 0.0;

  /// Optical circuit switching: time to establish a light path on circuit
  /// miss.  Zero for packet-switched fabrics.
  double circuit_setup = 0.0;

  /// Default eager/rendezvous protocol crossover used by the msg layer.
  std::uint32_t eager_threshold = 16 * 1024;

  /// End-to-end zero-byte one-way latency over `hops` switch hops,
  /// excluding host overheads (wire + switching only).
  double path_latency(int hops) const {
    return wire_latency * static_cast<double>(hops + 1) +
           switch_latency * static_cast<double>(hops);
  }
};

/// The five commodity fabrics of the talk's networking discussion, plus
/// QsNet as the contemporaneous high-end reference point.
namespace fabrics {

FabricParams fast_ethernet();   ///< 100 Mb/s, kernel TCP path
FabricParams gig_ethernet();    ///< 1 Gb/s, kernel TCP path
FabricParams myrinet2000();     ///< 2 Gb/s, user-level (GM-style)
FabricParams quadrics_qsnet();  ///< 3.2 Gb/s, user-level w/ RDMA (Elan3)
FabricParams infiniband_4x();   ///< 8 Gb/s data, user-level w/ RDMA
FabricParams optical_ocs();     ///< 10 Gb/s optical circuit switch

/// All presets in the order benchmarks report them.
std::vector<FabricParams> all();

/// Looks a preset up by name; throws on unknown name.
FabricParams by_name(const std::string& name);

}  // namespace fabrics
}  // namespace polaris::fabric
