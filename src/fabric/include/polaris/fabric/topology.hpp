// Interconnect topologies.
//
// A topology maps (source host, destination host) to a deterministic path
// of directed links.  Hosts and switches are devices; every directed edge
// between adjacent devices is one LinkId, which the packet-level network
// model serializes independently (full-duplex links are two LinkIds).
//
// Provided topologies: single-switch crossbar, three-level k-ary fat tree
// (the Clos build of Myrinet/InfiniBand clusters), and 2-D/3-D tori (the
// "mesh of commodity nodes" alternative).  Routing is deterministic —
// destination-mod uplink selection in the fat tree, dimension-order with
// shortest wrap in the torus — so simulations replay identically.
//
// Pairs with redundant fabric additionally expose their full *equal-cost
// minimal path set* (route_choices / route_k): every ECMP uplink+core
// combination in the fat tree, every dimension-traversal order in the
// torus.  Choice 0 is always the deterministic oblivious route, so a
// consumer that never asks for k > 0 sees exactly the historical paths;
// fabric::SimNetwork's adaptive routing mode picks among the alternates
// by live link occupancy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace polaris::fabric {

using NodeId = std::uint32_t;    ///< host index, 0..node_count-1
using LinkId = std::uint32_t;    ///< directed link index
using DeviceId = std::uint32_t;  ///< host or switch

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;
  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return link_ends_.size(); }
  std::size_t switch_count() const { return switch_count_; }

  /// Directed link path from src to dst.  Empty for src == dst.
  /// The reference is stable for the topology's lifetime (the cache is a
  /// node-based map and never evicts), so the network model holds routes
  /// by pointer instead of copying them per message.
  const std::vector<LinkId>& route(NodeId src, NodeId dst) const;

  /// Equal-cost minimal paths the topology can enumerate for the pair
  /// (>= 1; exactly 1 for src == dst and for single-path topologies).
  virtual std::size_t route_choices(NodeId src, NodeId dst) const {
    (void)src;
    (void)dst;
    return 1;
  }

  /// The k-th equal-cost minimal path, k in [0, route_choices(src, dst)).
  /// Choice 0 is bit-identical to route() — the deterministic oblivious
  /// path — so callers that never ask for k > 0 replay historical traces
  /// exactly.  Same stable-reference contract as route().
  const std::vector<LinkId>& route_k(NodeId src, NodeId dst,
                                     std::size_t k) const;

  /// Number of links traversed (0 for self).
  std::size_t hop_count(NodeId src, NodeId dst) const {
    return route(src, dst).size();
  }

  /// Switch devices traversed between two distinct hosts (links - 1).
  std::size_t switch_hops(NodeId src, NodeId dst) const {
    const auto h = hop_count(src, dst);
    return h == 0 ? 0 : h - 1;
  }

  /// Diameter in links, exact at any scale: each topology supplies a
  /// closed form (the earlier sampled scan silently under-reported for
  /// >128-host topologies).
  virtual std::size_t diameter() const = 0;

  /// Brute-force diameter over the first `max_nodes` hosts.  Exact only
  /// when node_count() <= max_nodes; kept as a small-n cross-check of the
  /// closed forms.
  std::size_t scan_diameter(std::size_t max_nodes = 128) const;

  /// Grid extents for topologies whose hosts form a coordinate grid,
  /// innermost (fastest-varying in NodeId) dimension first: {w, h} for a
  /// 2-D torus, {x, y, z} for a 3-D torus.  Empty for non-grid topologies
  /// (crossbar, fat tree — whose natural NodeId order is already the
  /// locality hierarchy).  Consumers: the resource manager's
  /// locality-preserving linearization (polaris::rm).
  virtual std::vector<std::size_t> dims() const { return {}; }

 protected:
  Topology(std::size_t nodes, std::size_t switches)
      : node_count_(nodes), switch_count_(switches) {}

  /// Creates (or returns) the LinkId for directed edge u->v.  Constructors
  /// build the full link set eagerly; compute_route only looks links up.
  LinkId link(DeviceId u, DeviceId v);

  /// Looks up an existing directed link; throws if absent (routing bug).
  LinkId link_between(DeviceId u, DeviceId v) const;

  /// Subclasses produce the path; the base class caches it.
  virtual std::vector<LinkId> compute_route(NodeId src, NodeId dst) const = 0;

  /// The k-th alternate path, called only with 0 < k < route_choices().
  /// Topologies that report route_choices() == 1 never see a call.
  virtual std::vector<LinkId> compute_route_k(NodeId src, NodeId dst,
                                              std::size_t k) const;

  std::size_t node_count_;
  std::size_t switch_count_;

 private:
  mutable std::unordered_map<std::uint64_t, std::vector<LinkId>> route_cache_;
  mutable std::unordered_map<std::uint64_t, std::vector<LinkId>>
      alt_route_cache_;  ///< k > 0 paths, keyed (src, dst, k)
  std::unordered_map<std::uint64_t, LinkId> link_ids_;
  std::vector<std::pair<DeviceId, DeviceId>> link_ends_;
};

/// All hosts attached to one ideal central switch.  The model for a single
/// large crossbar (or an optical switch's electronic control plane).
class Crossbar final : public Topology {
 public:
  explicit Crossbar(std::size_t nodes);
  std::string name() const override { return "crossbar"; }

  /// Any pair is host -> switch -> host.
  std::size_t diameter() const override { return 2; }

 private:
  std::vector<LinkId> compute_route(NodeId src, NodeId dst) const override;
};

/// Three-level k-ary fat tree: k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 cores, k^3/4 hosts.  k must be even.
class FatTree final : public Topology {
 public:
  explicit FatTree(std::size_t k);
  std::string name() const override;

  std::size_t radix() const { return k_; }

  /// Cross-pod pairs exist for every even k >= 2, and the longest route is
  /// host-edge-agg-core-agg-edge-host: 6 links regardless of radix.
  std::size_t diameter() const override { return 6; }

  /// Smallest even k such that a k-ary fat tree holds >= nodes hosts.
  static std::size_t radix_for(std::size_t nodes);

  /// ECMP width: 1 under the same edge switch, k/2 aggregation choices
  /// within a pod, (k/2)^2 core choices across pods.
  std::size_t route_choices(NodeId src, NodeId dst) const override;

 private:
  std::vector<LinkId> compute_route(NodeId src, NodeId dst) const override;
  std::vector<LinkId> compute_route_k(NodeId src, NodeId dst,
                                      std::size_t k) const override;

  // Device numbering helpers (hosts are 0..k^3/4-1).
  DeviceId edge_switch(std::size_t pod, std::size_t idx) const;
  DeviceId agg_switch(std::size_t pod, std::size_t idx) const;
  DeviceId core_switch(std::size_t idx) const;

  std::size_t k_;
};

/// 2-D torus, one host per router, dimension-order (x then y) routing with
/// shortest wraparound direction.
class Torus2D final : public Topology {
 public:
  Torus2D(std::size_t width, std::size_t height);
  std::string name() const override;

  /// Host injection + ejection links plus the worst-case shortest ring
  /// walk in each dimension.
  std::size_t diameter() const override { return 2 + w_ / 2 + h_ / 2; }

  std::vector<std::size_t> dims() const override { return {w_, h_}; }

  /// Minimal-adaptive width: 2 dimension orders (XY, YX) when both
  /// dimensions move, else the single dimension-order path.
  std::size_t route_choices(NodeId src, NodeId dst) const override;

 private:
  std::vector<LinkId> compute_route(NodeId src, NodeId dst) const override;
  std::vector<LinkId> compute_route_k(NodeId src, NodeId dst,
                                      std::size_t k) const override;
  DeviceId router(std::size_t x, std::size_t y) const;

  std::size_t w_, h_;
};

/// 3-D torus with dimension-order routing.
class Torus3D final : public Topology {
 public:
  Torus3D(std::size_t x, std::size_t y, std::size_t z);
  std::string name() const override;

  std::size_t diameter() const override {
    return 2 + nx_ / 2 + ny_ / 2 + nz_ / 2;
  }

  std::vector<std::size_t> dims() const override { return {nx_, ny_, nz_}; }

  /// Minimal-adaptive width: m! dimension orders for m moving dimensions
  /// (identity x-y-z first, so choice 0 stays the oblivious path).
  std::size_t route_choices(NodeId src, NodeId dst) const override;

 private:
  std::vector<LinkId> compute_route(NodeId src, NodeId dst) const override;
  std::vector<LinkId> compute_route_k(NodeId src, NodeId dst,
                                      std::size_t k) const override;
  DeviceId router(std::size_t x, std::size_t y, std::size_t z) const;

  std::size_t nx_, ny_, nz_;
};

/// Factory: builds the conventional topology for a fabric class and node
/// count — fat tree for switched fabrics, sized-up crossbar for tiny runs.
std::unique_ptr<Topology> make_default_topology(std::size_t nodes);

}  // namespace polaris::fabric
