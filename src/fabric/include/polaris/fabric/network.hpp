// Packet-level simulated network.
//
// A SimNetwork carries byte payloads between hosts of a Topology under a
// FabricParams wire model.  Messages are split into at most kMaxPackets
// MTU-or-larger packets; each packet holds each directed link on its path
// for its serialization time (FIFO semaphore per link), then pays wire and
// switch-forwarding latency.  This yields cut-through pipelining —
//     T(uncongested) ~ path_latency + bytes/link_bw + (hops-1)*pkt/link_bw
// — while modelling congestion exactly where it occurs: on shared links.
//
// Optical circuit switching (FabricParams::circuit_setup > 0) adds a
// per-source LRU circuit cache: a transfer to a destination without an
// established light path first pays the reconfiguration delay.  Setup is
// modelled optimistically (concurrent transfers to the same destination
// wait only once); see ensure_circuit().
//
// Host-side overheads (o_send, o_recv, gap, copies, registration) are NOT
// applied here — they belong to the messaging layer (polaris::msg), which
// composes them around transfer().
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/sync.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/obs/trace.hpp"

namespace polaris::fabric {

/// Aggregate traffic statistics for a SimNetwork.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t circuit_hits = 0;
  std::uint64_t circuit_misses = 0;
  double total_link_busy_s = 0.0;  ///< summed over links
};

class SimNetwork {
 public:
  /// Maximum packets a single message is split into.  Bounds event count
  /// per message while preserving pipelining behaviour.
  static constexpr std::uint32_t kMaxPackets = 16;

  /// Light paths a source NIC can keep established concurrently.
  static constexpr std::size_t kCircuitsPerSource = 4;

  SimNetwork(des::Engine& engine, FabricParams params,
             const Topology& topology);

  /// Moves `bytes` from src to dst; completes when the last byte lands.
  /// Self-transfers cost one host copy.  Does not include host overheads.
  des::Task<void> transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Closed-form transfer time assuming an idle network (for tests and
  /// analytic baselines).  Includes circuit setup on a cold cache if
  /// `assume_circuit` is false.
  double uncongested_seconds(NodeId src, NodeId dst, std::uint64_t bytes,
                             bool assume_circuit = true) const;

  const FabricParams& params() const { return params_; }
  const Topology& topology() const { return topo_; }
  des::Engine& engine() { return engine_; }
  const NetworkStats& stats() const { return stats_; }

  /// Attaches a tracer: every packet's serialization occupancy becomes a
  /// span on that link's track (process "links", created lazily so quiet
  /// links stay invisible), and circuit establishment emits instant
  /// events.  Untraced runs pay one null-pointer branch per packet hop.
  void attach_tracer(obs::Tracer& tracer);

  /// Busy seconds accumulated on one link (serialization occupancy).
  double link_busy_seconds(LinkId id) const;

 private:
  struct PacketPlan {
    std::uint32_t count;
    std::uint64_t bytes_per_packet;  // last packet may be smaller
  };
  PacketPlan plan_packets(std::uint64_t bytes) const;

  des::Task<void> send_packet(std::vector<LinkId> path,
                              std::uint64_t pkt_bytes);
  des::Task<void> ensure_circuit(NodeId src, NodeId dst);

  des::SimTime serialize_time(std::uint64_t bytes) const {
    return des::from_seconds(static_cast<double>(bytes) / params_.link_bw);
  }

  /// Lazily-created trace track of a link (only called when tracer_ set).
  obs::TrackId link_track(LinkId id);

  des::Engine& engine_;
  FabricParams params_;
  const Topology& topo_;
  std::vector<std::unique_ptr<des::Semaphore>> links_;
  std::vector<double> link_busy_s_;
  NetworkStats stats_;
  obs::Tracer* tracer_ = nullptr;
  static constexpr obs::TrackId kNoTrack =
      std::numeric_limits<obs::TrackId>::max();
  std::vector<obs::TrackId> link_tracks_;
  obs::TrackId circuit_track_ = kNoTrack;

  // Optical circuit cache: per source, LRU list of destinations.
  struct CircuitCache {
    std::list<NodeId> lru;  // front = most recent
    std::unordered_map<NodeId, std::list<NodeId>::iterator> index;
  };
  std::vector<CircuitCache> circuits_;
};

}  // namespace polaris::fabric
