// Packet-level simulated network with a two-tier data path.
//
// A SimNetwork carries byte payloads between hosts of a Topology under a
// FabricParams wire model.  Messages are split into at most kMaxPackets
// MTU-or-larger packets; each packet holds each directed link on its path
// for its serialization time (strict per-link FIFO), then pays wire and
// switch-forwarding latency.  This yields cut-through pipelining —
//     T(uncongested) ~ path_latency + bytes/link_bw + (hops-1)*pkt/link_bw
// — while modelling congestion exactly where it occurs: on shared links.
//
// The data path has two tiers, both exactly equivalent (to the simulated
// nanosecond) to the original per-packet-coroutine + per-link-semaphore
// model, which survives as fabric::ReferenceNetwork for proof.  The one
// caveat: when two packets with different upstream histories arrive at a
// shared link on the exact same tick, the models may break the tie in a
// different (equally valid) FIFO order — the semaphore model orders by its
// internal grant/release event sequence, this one by reservation event
// order; simultaneous arrivals are unordered in the paper-level model, and
// aggregate link occupancy is conserved either way.
//
//  - Tier 1, analytic bypass: when no other message is in flight on any
//    link of the path, the whole message becomes a pooled "flight" — the
//    last-byte arrival is computed in closed form (the cut-through formula
//    above, in exact tick arithmetic) and ONE completion event is
//    scheduled.  No per-packet events, no coroutine frames, no route copy.
//  - Tier 2, contended fallback: slab-pooled flat packet walkers advance
//    hop by hop via raw engine callbacks against per-link `busy_until`
//    reservation accumulators — one event per hop per packet instead of
//    the semaphore model's ~3 events plus a spawned coroutine frame.
//
// Exactness under mixed traffic comes from *lazy materialization*: an
// in-flight flight's packet positions are closed-form at any instant, so
// when a later transfer's path intersects it, the flight is converted into
// walkers positioned exactly where its packets would be, before the new
// message injects.  Flights in flight are always pairwise link-disjoint
// (a flight only starts on fully idle links), so materialization never
// cascades.  Per-link FIFO order is preserved because a walker reserves a
// link the moment it arrives (start = max(now, busy_until)), which is the
// order the semaphore granted in.
//
// Optical circuit switching (FabricParams::circuit_setup > 0) adds a
// per-source LRU circuit cache (fixed-size inline array — a 4-entry LRU
// does not justify a std::list + unordered_map's allocations): a transfer
// to a destination without an established light path first pays the
// reconfiguration delay.  Setup is modelled optimistically (concurrent
// transfers to the same destination wait only once); see ensure_circuit().
//
// Host-side overheads (o_send, o_recv, gap, copies, registration) are NOT
// applied here — they belong to the messaging layer (polaris::msg), which
// composes them around transfer().
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/support/check.hpp"

namespace polaris::fabric {

/// Outcome of a transfer.  Healthy runs only ever see kOk; the other values
/// appear once fault injection is enabled (enable_faults()) and a node or
/// link on the message's path goes down before the last byte lands.
enum class XferStatus : std::uint8_t {
  kOk = 0,
  kNodeDown,  ///< source or destination NIC down (at inject or mid-flight)
  kLinkDown,  ///< a routed link went down (at inject or mid-flight)
};

const char* to_string(XferStatus status);

/// Per-message path selection policy.
///
///  - kOblivious (default): every message between a pair takes the
///    topology's single deterministic route — bit-identical to every run
///    before adaptive routing existed (the golden-trace tests pin this).
///  - kAdaptive: each injection scans the pair's equal-cost minimal paths
///    (Topology::route_k) and takes the one with the least live occupancy —
///    queued serialization time (`busy_until`) plus an in-flight-message
///    penalty so tier-1 analytic flights (which reserve no busy_until) are
///    still visible.  Ties break toward the lowest choice index, so the
///    decision is a pure function of simulator state and replays exactly.
///    With faults enabled, candidates crossing a downed link are skipped —
///    adaptive messages reroute around dead fabric that would refuse an
///    oblivious sender.
enum class RoutingMode : std::uint8_t {
  kOblivious = 0,
  kAdaptive = 1,
};

const char* to_string(RoutingMode mode);

/// Aggregate traffic statistics for a SimNetwork.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t circuit_hits = 0;
  std::uint64_t circuit_misses = 0;
  double total_link_busy_s = 0.0;  ///< summed over links

  // Two-tier data-path accounting.
  std::uint64_t messages_bypassed = 0;  ///< completed via one analytic event
  std::uint64_t messages_walked = 0;    ///< walked hop-by-hop from injection
  std::uint64_t flights_materialized = 0;  ///< demoted to walkers mid-flight
  std::uint64_t walker_hop_events = 0;     ///< tier-2 hop-advance events

  /// Transfers that completed with an error: refused at injection because an
  /// endpoint/link was already down, or killed mid-flight by a fault.
  std::uint64_t messages_dropped = 0;

  // Adaptive-routing accounting (zero in oblivious mode).
  std::uint64_t adaptive_decisions = 0;  ///< injections with > 1 candidate
  std::uint64_t adaptive_rerouted = 0;   ///< picked a non-oblivious path

  /// Fraction of network messages (self-transfers excluded) that completed
  /// analytically without ever owning a walker.
  double bypass_rate() const {
    const std::uint64_t total =
        messages_bypassed + messages_walked + flights_materialized;
    return total == 0 ? 0.0
                      : static_cast<double>(messages_bypassed) /
                            static_cast<double>(total);
  }
};

class SimNetwork {
 public:
  /// Maximum packets a single message is split into.  Bounds event count
  /// per message while preserving pipelining behaviour.
  static constexpr std::uint32_t kMaxPackets = 16;

  /// Light paths a source NIC can keep established concurrently.
  static constexpr std::size_t kCircuitsPerSource = 4;

  /// Completion callback carrying the transfer outcome.  Healthy paths
  /// always deliver XferStatus::kOk.
  using DoneFn = void (*)(void* ctx, XferStatus status);

  SimNetwork(des::Engine& engine, FabricParams params,
             const Topology& topology);

  /// Moves `bytes` from src to dst; completes when the last byte lands (or
  /// when a fault kills the message — see XferStatus).  Self-transfers cost
  /// one host copy.  Zero-byte transfers pay propagation (and circuit
  /// setup) only — no serialization.  Does not include host overheads.
  des::Task<XferStatus> transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Raw-callback form of transfer() for allocation-free callers (e.g. the
  /// simrt eager delivery chain): identical event sequence and simulated
  /// timing, but completion invokes `done(ctx, status)` at the exact point
  /// the coroutine form would have resumed — no coroutine frame is created.
  /// `ctx` must stay valid until `done` fires.
  void transfer_raw(NodeId src, NodeId dst, std::uint64_t bytes, DoneFn done,
                    void* ctx);

  // -- fault injection --------------------------------------------------------
  // Disabled by default: the checks below compile to one untaken branch per
  // injection, and a run that never calls enable_faults() is event-for-event
  // identical to a build without this feature (the golden-trace test pins
  // this).  set_node_up(false) / set_link_up(false) kill every in-flight
  // message crossing the dead element — both tiers — completing each with
  // an error status via a zero-delay event (never re-entrantly).  Occupancy
  // already reserved by killed packets is NOT rewound: the bytes were on
  // the wire.  Routes are deterministic, so messages injected while an
  // element is down fail immediately rather than rerouting.

  /// Idempotently switches the fault path on (allocates the up/down maps).
  void enable_faults();
  bool faults_enabled() const { return faults_enabled_; }
  void set_node_up(NodeId node, bool up);
  void set_link_up(LinkId link, bool up);
  bool node_up(NodeId node) const {
    return !faults_enabled_ || node_down_[node] == 0;
  }
  bool link_up(LinkId link) const {
    return !faults_enabled_ || link_down_[link] == 0;
  }

  /// Closed-form transfer time assuming an idle network (for tests and
  /// analytic baselines).  Includes circuit setup on a cold cache if
  /// `assume_circuit` is false.
  double uncongested_seconds(NodeId src, NodeId dst, std::uint64_t bytes,
                             bool assume_circuit = true) const;

  /// Switches path selection; takes effect for messages injected after the
  /// call.  In-flight messages keep the path they reserved.
  void set_routing(RoutingMode mode) { routing_ = mode; }
  RoutingMode routing() const { return routing_; }

  const FabricParams& params() const { return params_; }
  const Topology& topology() const { return topo_; }
  des::Engine& engine() { return engine_; }
  const NetworkStats& stats() const { return stats_; }

  /// Attaches a tracer: packet serialization occupancy becomes spans on
  /// that link's track (process "links", created lazily so quiet links
  /// stay invisible) — one "busy" span per packet when walking, one merged
  /// "busy" span per link covering every packet when a whole message
  /// bypassed — and circuit establishment emits instant events.  Untraced
  /// runs pay one null-pointer branch per reservation.
  void attach_tracer(obs::Tracer& tracer);

  /// Stops recording (hot paths take their null-tracer branches); tracks
  /// and interned names survive, so re-attaching the same tracer rebinds
  /// without creating duplicates.
  void detach_tracer() { tracer_ = nullptr; }

  /// Cheap enable gate over the bound tracer: the record-path pointer
  /// itself is the flag, so disabled tracing costs exactly the
  /// null-pointer branch an untraced run pays — no per-event enabled
  /// check.  Requires a prior attach_tracer; tracks and interned names
  /// are untouched either way.
  void set_tracing_enabled(bool on) {
    POLARIS_CHECK(bound_tracer_ != nullptr);
    tracer_ = on ? bound_tracer_ : nullptr;
  }

  /// Busy seconds accumulated on one link (serialization occupancy).
  double link_busy_seconds(LinkId id) const;

 private:
  static constexpr std::uint32_t kNoFlight = 0xffff'ffffu;

  struct PacketPlan {
    std::uint32_t count;
    std::uint64_t bytes_per_packet;  // last packet may be smaller
  };
  PacketPlan plan_packets(std::uint64_t bytes) const;

  des::SimTime serialize_ticks(std::uint64_t bytes) const {
    return des::from_seconds(static_cast<double>(bytes) / params_.link_bw);
  }

  // -- per-link state ---------------------------------------------------------
  struct LinkState {
    des::SimTime busy_until = 0;  ///< end of the latest reservation
    std::uint32_t inflight = 0;   ///< in-flight messages routed over this link
    std::uint32_t flight = kNoFlight;  ///< tier-1 holder, if any (exclusive)
  };

  // -- tier 1: analytic flights ----------------------------------------------
  // Both tiers complete through a raw (fn, ctx) pair; the coroutine form of
  // transfer() passes resume_handle_cb + its own handle, transfer_raw()
  // passes the caller's callback straight through.
  struct Flight {
    SimNetwork* net = nullptr;
    const std::vector<LinkId>* path = nullptr;  // borrowed from Topology cache
    des::SimTime start = 0;  ///< injection time (post circuit setup)
    des::SimTime ser = 0;    ///< per-packet serialization, ticks
    std::uint32_t packets = 0;
    std::uint32_t slot = 0;  ///< own index in flights_
    NodeId src = 0;
    NodeId dst = 0;
    des::EventId completion{};
    DoneFn done_fn = nullptr;
    void* done_ctx = nullptr;
    bool active = false;
  };

  // -- tier 2: pooled flat packet walkers ------------------------------------
  struct WalkMessage;
  struct Walker {
    WalkMessage* msg = nullptr;
    std::uint32_t next_hop = 0;  ///< link index the pending event arrives at
                                 ///< (== hops means final-delivery event)
    des::EventId event{};        ///< pending arrival/delivery event, for kills
  };
  struct WalkMessage {
    SimNetwork* net = nullptr;
    const std::vector<LinkId>* path = nullptr;
    des::SimTime ser = 0;
    std::uint32_t remaining = 0;
    std::uint32_t count = 0;  ///< packets with walker slots (kill scan bound)
    std::uint32_t slot = 0;
    NodeId src = 0;
    NodeId dst = 0;
    bool from_flight = false;  ///< materialized (counted already), not walked
    bool active = false;
    DoneFn done_fn = nullptr;
    void* done_ctx = nullptr;
    std::array<Walker, kMaxPackets> walkers{};
  };

  /// A transfer_raw() parked behind an optical circuit setup delay; doubles
  /// as the pooled context for deferred status delivery (deliver_status_cb).
  struct RawTransfer {
    SimNetwork* net = nullptr;
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t bytes = 0;
    DoneFn done = nullptr;
    void* ctx = nullptr;
    std::uint32_t slot = 0;
    XferStatus status = XferStatus::kOk;
  };

  /// Awaits message delivery; suspension injects the message with the
  /// awaiter itself as the completion context, which stores the status
  /// before resuming the coroutine.
  struct InjectAwaiter {
    SimNetwork& net;
    NodeId src;
    NodeId dst;
    std::uint64_t bytes;
    std::coroutine_handle<> handle{};
    XferStatus status = XferStatus::kOk;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      net.inject(src, dst, bytes, &resume_awaiter_cb, this);
    }
    XferStatus await_resume() const noexcept { return status; }
  };

  /// Post-circuit injection shared by both transfer forms: path selection,
  /// fault check, packet planning, flight materialization, idle-path test,
  /// then tier dispatch.
  void inject(NodeId src, NodeId dst, std::uint64_t bytes, DoneFn done,
              void* ctx);

  /// Adaptive path selection: least-occupied equal-cost candidate, lowest
  /// index on ties.  `ser_total` is this message's full serialization time
  /// in ticks — the congestion price of one in-flight message on a link.
  const std::vector<LinkId>& select_path(NodeId src, NodeId dst,
                                         des::SimTime ser_total);

  void begin_flight(NodeId src, NodeId dst, const std::vector<LinkId>& path,
                    des::SimTime ser, std::uint32_t packets, DoneFn done,
                    void* ctx);
  void complete_flight(Flight& f, bool defer_resume);
  void materialize_flight(Flight& f);

  void begin_walk(NodeId src, NodeId dst, const std::vector<LinkId>& path,
                  des::SimTime ser, std::uint32_t packets, DoneFn done,
                  void* ctx);
  /// Reserves the walker's next link (now == its arrival time there) and
  /// schedules the following arrival or the final delivery.
  void advance_walker(Walker& w);
  void finish_walk_packet(WalkMessage& m);

  // -- fault machinery --------------------------------------------------------
  /// Completes `done(ctx, status)` via one zero-delay event — fault
  /// completions never run re-entrantly inside the caller of set_*_up().
  void deliver_async(DoneFn done, void* ctx, XferStatus status);
  void kill_flight(Flight& f, XferStatus status);
  void kill_walk(WalkMessage& m, XferStatus status);

  static void flight_complete_cb(void* ctx);
  static void walker_arrive_cb(void* ctx);
  static void resume_awaiter_cb(void* ctx, XferStatus status);
  static void raw_setup_done_cb(void* ctx);
  static void deliver_status_cb(void* ctx);

  Flight& acquire_flight();
  void release_flight(std::uint32_t slot);
  WalkMessage& acquire_walk();
  void release_walk(std::uint32_t slot);
  RawTransfer& acquire_raw();
  void release_raw(std::uint32_t slot);

  /// Circuit-cache lookup shared by both transfer forms: true on a hit
  /// (stats/trace recorded); on a miss records the setup span and installs
  /// the circuit optimistically — the caller pays params_.circuit_setup
  /// before injecting.
  bool circuit_ready(NodeId src, NodeId dst);

  /// Serialization occupancy bookkeeping shared by both tiers.
  void credit_link(LinkId l, des::SimTime start, des::SimTime ser,
                   std::uint32_t span_packets);

  des::Task<void> ensure_circuit(NodeId src, NodeId dst);

  /// Lazily-created trace track of a link (only called when tracer_ set).
  obs::TrackId link_track(LinkId id);

  des::Engine& engine_;
  FabricParams params_;
  const Topology& topo_;
  RoutingMode routing_ = RoutingMode::kOblivious;
  des::SimTime prop_mid_ = 0;   ///< wire + switch forwarding, ticks
  des::SimTime prop_last_ = 0;  ///< wire only (after the final link), ticks

  std::vector<LinkState> links_;
  std::vector<des::SimTime> link_busy_ticks_;

  // Fault state (empty until enable_faults()).
  bool faults_enabled_ = false;
  std::vector<std::uint8_t> node_down_;
  std::vector<std::uint8_t> link_down_;

  // Slab pools (deque: grows without moving live flight/walker addresses,
  // which raw-callback contexts point into).
  std::deque<Flight> flights_;
  std::vector<std::uint32_t> flight_free_;
  std::deque<WalkMessage> walks_;
  std::vector<std::uint32_t> walk_free_;
  std::deque<RawTransfer> raw_transfers_;
  std::vector<std::uint32_t> raw_free_;

  NetworkStats stats_;
  obs::Tracer* tracer_ = nullptr;
  static constexpr obs::TrackId kNoTrack =
      std::numeric_limits<obs::TrackId>::max();
  std::vector<obs::TrackId> link_tracks_;
  obs::TrackId circuit_track_ = kNoTrack;
  obs::NameId busy_id_ = obs::kNoName;      ///< interned in attach_tracer
  obs::NameId cat_link_id_ = obs::kNoName;  ///< interned in attach_tracer
  obs::Tracer* bound_tracer_ = nullptr;     ///< tracer tracks were built for

  // Optical circuit cache: per source, LRU of destinations in a fixed
  // inline array (front = most recent).
  struct CircuitCache {
    std::array<NodeId, kCircuitsPerSource> dst{};
    std::uint32_t size = 0;

    bool touch(NodeId d);    ///< true on hit; moves d to the front
    void insert(NodeId d);   ///< pushes d to the front, evicting the LRU
  };
  std::vector<CircuitCache> circuits_;
};

}  // namespace polaris::fabric
