#include "polaris/fabric/loggp.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::fabric {

double LogGPParams::one_way(std::uint64_t bytes) const {
  const double k = bytes == 0 ? 0.0 : static_cast<double>(bytes - 1);
  return o_s + L + k * G + o_r;
}

double LogGPParams::message_rate() const {
  const double bottleneck = std::max(g, o_s);
  POLARIS_CHECK(bottleneck > 0.0);
  return 1.0 / bottleneck;
}

LogGPParams extract_loggp(const FabricParams& p, int switch_hops) {
  POLARIS_CHECK(switch_hops >= 0);
  LogGPParams lg;
  lg.L = p.path_latency(switch_hops);
  lg.o_s = p.o_send;
  lg.o_r = p.o_recv;
  lg.g = p.gap;
  // Long-message per-byte cost: the wire, plus a staging copy per side on
  // kernel-path fabrics (send-side copy into socket buffers and recv-side
  // copy out are not overlapped with the wire in 2002-era stacks).
  double per_byte = 1.0 / p.link_bw;
  if (!p.os_bypass) {
    per_byte += 2.0 / p.copy_bw;
  }
  lg.G = per_byte;
  return lg;
}

}  // namespace polaris::fabric
