#include "polaris/fabric/reference.hpp"

#include <algorithm>
#include <utility>

#include "polaris/support/check.hpp"

namespace polaris::fabric {

ReferenceNetwork::ReferenceNetwork(des::Engine& engine, FabricParams params,
                                   const Topology& topology)
    : engine_(engine), params_(std::move(params)), topo_(topology) {
  POLARIS_CHECK(params_.link_bw > 0 && params_.mtu > 0);
  links_.reserve(topo_.link_count());
  for (std::size_t i = 0; i < topo_.link_count(); ++i) {
    links_.push_back(std::make_unique<des::Semaphore>(engine_, 1));
  }
  link_busy_ticks_.assign(topo_.link_count(), 0);
  if (params_.circuit_setup > 0.0) {
    circuits_.resize(topo_.node_count());
  }
}

ReferenceNetwork::PacketPlan ReferenceNetwork::plan_packets(
    std::uint64_t bytes) const {
  if (bytes == 0) return {1, 0};
  PacketPlan plan;
  const std::uint64_t raw = (bytes + params_.mtu - 1) / params_.mtu;
  plan.count = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(raw, 1, kMaxPackets));
  plan.bytes_per_packet = (bytes + plan.count - 1) / plan.count;
  return plan;
}

des::Task<void> ReferenceNetwork::transfer(NodeId src, NodeId dst,
                                           std::uint64_t bytes) {
  POLARIS_CHECK(src < topo_.node_count() && dst < topo_.node_count());
  ++stats_.messages;
  stats_.bytes += bytes;

  if (src == dst) {
    const double t = static_cast<double>(bytes) / params_.copy_bw;
    co_await des::delay(engine_, des::from_seconds(t));
    co_return;
  }

  if (params_.circuit_setup > 0.0) {
    co_await ensure_circuit(src, dst);
  }

  const std::vector<LinkId> path = topo_.route(src, dst);  // copy: coroutine
  const PacketPlan plan = plan_packets(bytes);
  stats_.packets += plan.count;

  // One sub-process per packet; they pipeline through the per-link FIFO
  // semaphores.  `remaining`/`done` live in this frame, which outlives the
  // packets because we await `done` below.
  std::uint32_t remaining = plan.count;
  des::Trigger done(engine_);
  for (std::uint32_t i = 0; i < plan.count; ++i) {
    engine_.spawn([](ReferenceNetwork& net, std::vector<LinkId> p,
                     std::uint64_t pkt, std::uint32_t& rem,
                     des::Trigger& trig) -> des::Task<void> {
      co_await net.send_packet(std::move(p), pkt);
      if (--rem == 0) trig.fire();
    }(*this, path, plan.bytes_per_packet, remaining, done));
  }
  co_await done.wait();
}

des::Task<void> ReferenceNetwork::send_packet(std::vector<LinkId> path,
                                              std::uint64_t pkt_bytes) {
  const des::SimTime ser = serialize_time(pkt_bytes);
  const auto hops = path.size();
  for (std::size_t j = 0; j < hops; ++j) {
    const LinkId l = path[j];
    co_await links_[l]->acquire();
    co_await des::delay(engine_, ser);
    links_[l]->release();
    link_busy_ticks_[l] += ser;
    stats_.total_link_busy_s += des::to_seconds(ser);
    // Propagation: wire always; switch forwarding except after final link.
    double prop = params_.wire_latency;
    if (j + 1 < hops) prop += params_.switch_latency;
    co_await des::delay(engine_, des::from_seconds(prop));
  }
}

des::Task<void> ReferenceNetwork::ensure_circuit(NodeId src, NodeId dst) {
  CircuitCache& cache = circuits_[src];
  if (const auto it = std::find(cache.lru.begin(), cache.lru.end(), dst);
      it != cache.lru.end()) {
    cache.lru.erase(it);
    cache.lru.insert(cache.lru.begin(), dst);
    ++stats_.circuit_hits;
    co_return;
  }
  ++stats_.circuit_misses;
  cache.lru.insert(cache.lru.begin(), dst);
  if (cache.lru.size() > kCircuitsPerSource) cache.lru.pop_back();
  co_await des::delay(engine_, des::from_seconds(params_.circuit_setup));
}

double ReferenceNetwork::link_busy_seconds(LinkId id) const {
  POLARIS_CHECK(id < link_busy_ticks_.size());
  return des::to_seconds(link_busy_ticks_[id]);
}

}  // namespace polaris::fabric
