#include "polaris/fabric/network.hpp"

#include <algorithm>
#include <string>

#include "polaris/support/check.hpp"

namespace polaris::fabric {

const char* to_string(XferStatus status) {
  switch (status) {
    case XferStatus::kOk:
      return "ok";
    case XferStatus::kNodeDown:
      return "node-down";
    case XferStatus::kLinkDown:
      return "link-down";
  }
  return "unknown";
}

const char* to_string(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kOblivious:
      return "oblivious";
    case RoutingMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

SimNetwork::SimNetwork(des::Engine& engine, FabricParams params,
                       const Topology& topology)
    : engine_(engine), params_(std::move(params)), topo_(topology) {
  POLARIS_CHECK(params_.link_bw > 0 && params_.mtu > 0);
  links_.assign(topo_.link_count(), LinkState{});
  link_busy_ticks_.assign(topo_.link_count(), 0);
  // Per-hop propagation in ticks, rounded exactly as the semaphore model
  // rounded its per-hop delay() arguments (one from_seconds per hop).
  prop_mid_ = des::from_seconds(params_.wire_latency + params_.switch_latency);
  prop_last_ = des::from_seconds(params_.wire_latency);
  if (params_.circuit_setup > 0.0) {
    circuits_.resize(topo_.node_count());
  }
}

SimNetwork::PacketPlan SimNetwork::plan_packets(std::uint64_t bytes) const {
  if (bytes == 0) {
    // Pure latency probe: one zero-length packet — propagation and
    // overheads only, no serialization occupancy anywhere on the path.
    return {1, 0};
  }
  PacketPlan plan;
  const std::uint64_t raw =
      (bytes + params_.mtu - 1) / params_.mtu;  // ceil-div
  plan.count = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(raw, 1, kMaxPackets));
  plan.bytes_per_packet = (bytes + plan.count - 1) / plan.count;
  return plan;
}

des::Task<XferStatus> SimNetwork::transfer(NodeId src, NodeId dst,
                                           std::uint64_t bytes) {
  POLARIS_CHECK(src < topo_.node_count() && dst < topo_.node_count());
  ++stats_.messages;
  stats_.bytes += bytes;

  if (src == dst) {
    if (faults_enabled_ && node_down_[src] != 0) {
      ++stats_.messages_dropped;
      co_return XferStatus::kNodeDown;
    }
    // Intra-node: one host copy.
    const double t = static_cast<double>(bytes) / params_.copy_bw;
    co_await des::delay(engine_, des::from_seconds(t));
    co_return XferStatus::kOk;
  }

  if (params_.circuit_setup > 0.0) {
    co_await ensure_circuit(src, dst);
  }

  co_return co_await InjectAwaiter{*this, src, dst, bytes};
}

void SimNetwork::transfer_raw(NodeId src, NodeId dst, std::uint64_t bytes,
                              DoneFn done, void* ctx) {
  POLARIS_CHECK(src < topo_.node_count() && dst < topo_.node_count());
  ++stats_.messages;
  stats_.bytes += bytes;

  if (src == dst) {
    if (faults_enabled_ && node_down_[src] != 0) {
      ++stats_.messages_dropped;
      deliver_async(done, ctx, XferStatus::kNodeDown);
      return;
    }
    // Intra-node: one host copy — one event, as the coroutine form's
    // delay would have scheduled.
    const double t = static_cast<double>(bytes) / params_.copy_bw;
    RawTransfer& rt = acquire_raw();
    rt.done = done;
    rt.ctx = ctx;
    rt.status = XferStatus::kOk;
    engine_.schedule_raw_after(des::from_seconds(t), &deliver_status_cb, &rt);
    return;
  }

  if (params_.circuit_setup > 0.0 && !circuit_ready(src, dst)) {
    // Park behind the reconfiguration delay in a pooled record, then
    // inject — the same single event ensure_circuit() awaits on a miss.
    RawTransfer& rt = acquire_raw();
    rt.src = src;
    rt.dst = dst;
    rt.bytes = bytes;
    rt.done = done;
    rt.ctx = ctx;
    engine_.schedule_raw_after(des::from_seconds(params_.circuit_setup),
                               &raw_setup_done_cb, &rt);
    return;
  }

  inject(src, dst, bytes, done, ctx);
}

void SimNetwork::raw_setup_done_cb(void* ctx) {
  RawTransfer& rt = *static_cast<RawTransfer*>(ctx);
  SimNetwork* net = rt.net;
  const NodeId src = rt.src;
  const NodeId dst = rt.dst;
  const std::uint64_t bytes = rt.bytes;
  const DoneFn done = rt.done;
  void* done_ctx = rt.ctx;
  net->release_raw(rt.slot);
  net->inject(src, dst, bytes, done, done_ctx);
}

const std::vector<LinkId>& SimNetwork::select_path(NodeId src, NodeId dst,
                                                   des::SimTime ser_total) {
  const std::size_t choices = topo_.route_choices(src, dst);
  if (choices <= 1) return topo_.route(src, dst);
  ++stats_.adaptive_decisions;
  const des::SimTime now = engine_.now();
  const std::vector<LinkId>* best = nullptr;
  std::size_t best_k = 0;
  des::SimTime best_cost = 0;
  for (std::size_t k = 0; k < choices; ++k) {
    const std::vector<LinkId>& cand = topo_.route_k(src, dst, k);
    des::SimTime cost = 0;
    bool down = false;
    for (const LinkId l : cand) {
      if (faults_enabled_ && link_down_[l] != 0) {
        down = true;
        break;
      }
      const LinkState& ls = links_[l];
      // Queued serialization plus a per-in-flight-message penalty of this
      // message's own serialization time: tier-1 flights reserve no
      // busy_until, so inflight is the only signal that sees them.
      if (ls.busy_until > now) cost += ls.busy_until - now;
      cost += static_cast<des::SimTime>(ls.inflight) * ser_total;
    }
    if (down) continue;
    if (best == nullptr || cost < best_cost) {
      best = &cand;
      best_k = k;
      best_cost = cost;
      if (cost == 0) break;  // an idle path; lower k cannot beat it
    }
  }
  if (best == nullptr) {
    // Every candidate crosses a downed link: fall back to the oblivious
    // path and let the injection refusal scan fail the message.
    return topo_.route(src, dst);
  }
  if (best_k != 0) ++stats_.adaptive_rerouted;
  return *best;
}

void SimNetwork::inject(NodeId src, NodeId dst, std::uint64_t bytes,
                        DoneFn done, void* ctx) {
  const PacketPlan plan = plan_packets(bytes);
  const des::SimTime ser = serialize_ticks(plan.bytes_per_packet);

  // Borrowed straight out of the Topology route cache (node-based map:
  // the reference stays valid for the message lifetime) — no per-message
  // route copy.  Oblivious mode never touches route_k: identical lookups,
  // identical paths, identical traces.
  const std::vector<LinkId>& path =
      routing_ == RoutingMode::kAdaptive
          ? select_path(src, dst,
                        ser * static_cast<des::SimTime>(plan.count))
          : topo_.route(src, dst);

  if (faults_enabled_) {
    // Refuse at the NIC: deterministic routing means a message whose source,
    // destination, or any routed link is down cannot arrive — fail it now
    // (one zero-delay event) instead of walking it into a dead element.
    XferStatus refuse = XferStatus::kOk;
    if (node_down_[src] != 0 || node_down_[dst] != 0) {
      refuse = XferStatus::kNodeDown;
    } else {
      for (const LinkId l : path) {
        if (link_down_[l] != 0) {
          refuse = XferStatus::kLinkDown;
          break;
        }
      }
    }
    if (refuse != XferStatus::kOk) {
      ++stats_.messages_dropped;
      deliver_async(done, ctx, refuse);
      return;
    }
  }

  stats_.packets += plan.count;

  // Any in-flight analytic flight sharing a link with this path could be
  // delayed by our packets (and vice versa), so its closed-form completion
  // is no longer trustworthy: demote it to walkers positioned exactly
  // where its packets are right now, before we inject.
  for (const LinkId l : path) {
    const std::uint32_t fs = links_[l].flight;
    if (fs != kNoFlight) materialize_flight(flights_[fs]);
  }
  bool idle = true;
  for (const LinkId l : path) {
    if (links_[l].inflight != 0) {
      idle = false;
      break;
    }
  }
  if (idle) {
    begin_flight(src, dst, path, ser, plan.count, done, ctx);
  } else {
    begin_walk(src, dst, path, ser, plan.count, done, ctx);
  }
}

// ------------------------------------------------------- tier 1: flights

void SimNetwork::begin_flight(NodeId src, NodeId dst,
                              const std::vector<LinkId>& path,
                              des::SimTime ser, std::uint32_t packets,
                              DoneFn done, void* ctx) {
  Flight& f = acquire_flight();
  f.path = &path;
  f.start = engine_.now();
  f.ser = ser;
  f.packets = packets;
  f.src = src;
  f.dst = dst;
  f.done_fn = done;
  f.done_ctx = ctx;
  f.active = true;
  for (const LinkId l : path) {
    LinkState& ls = links_[l];
    ++ls.inflight;
    ls.flight = f.slot;
  }
  // Cut-through pipeline, exact tick arithmetic: packet i starts
  // serializing on link j at start + (i+j)*ser + j*prop_mid, with no
  // bubbles on an idle path; the last byte lands prop_last after the last
  // packet leaves the last link.
  const auto hops = static_cast<des::SimTime>(path.size());
  const des::SimTime completion = f.start + (packets + hops - 1) * ser +
                                  (hops - 1) * prop_mid_ + prop_last_;
  f.completion = engine_.schedule_raw_at(completion, &flight_complete_cb, &f);
}

void SimNetwork::flight_complete_cb(void* ctx) {
  Flight& f = *static_cast<Flight*>(ctx);
  f.net->complete_flight(f, /*defer_resume=*/false);
}

void SimNetwork::complete_flight(Flight& f, bool defer_resume) {
  const std::vector<LinkId>& path = *f.path;
  for (std::size_t j = 0; j < path.size(); ++j) {
    LinkState& ls = links_[path[j]];
    --ls.inflight;
    ls.flight = kNoFlight;
    // The message's occupancy of link j is one contiguous interval
    // starting when the head packet reaches it.
    const des::SimTime s0 =
        f.start + static_cast<des::SimTime>(j) * (f.ser + prop_mid_);
    credit_link(path[j], s0, f.ser, f.packets);
  }
  ++stats_.messages_bypassed;
  const DoneFn done = f.done_fn;
  void* ctx = f.done_ctx;
  release_flight(f.slot);
  if (defer_resume) {
    // Settled from inside another message's injection: complete after the
    // current event, as the cancelled completion event would have.
    deliver_async(done, ctx, XferStatus::kOk);
  } else {
    done(ctx, XferStatus::kOk);
  }
}

void SimNetwork::materialize_flight(Flight& f) {
  engine_.cancel(f.completion);
  const des::SimTime t = engine_.now();
  const std::vector<LinkId>& path = *f.path;
  const auto hops = static_cast<des::SimTime>(path.size());
  const des::SimTime ser = f.ser;
  const des::SimTime last_completion = f.start + (f.packets + hops - 1) * ser +
                                       (hops - 1) * prop_mid_ + prop_last_;
  if (last_completion <= t) {
    // The last byte lands at exactly this tick; the completion event just
    // sits later in this tick's event list.  The links are already free
    // (occupancy ended before delivery), so settle analytically.
    complete_flight(f, /*defer_resume=*/true);
    return;
  }
  ++stats_.flights_materialized;

  WalkMessage& m = acquire_walk();
  m.path = f.path;
  m.ser = ser;
  m.remaining = 0;
  m.count = f.packets;
  m.src = f.src;
  m.dst = f.dst;
  m.done_fn = f.done_fn;
  m.done_ctx = f.done_ctx;
  m.from_flight = true;
  m.active = true;
  for (std::uint32_t i = 0; i < f.packets; ++i) {
    // On the uncontended path the flight flew so far, packet i reaches
    // (and immediately starts serializing on) link j at
    //   a(i, j) = start + (i+j)*ser + j*prop_mid.
    const des::SimTime completion_i =
        f.start + (i + hops) * ser + (hops - 1) * prop_mid_ + prop_last_;
    std::size_t j = 0;
    for (; j < path.size(); ++j) {
      const des::SimTime a = f.start +
                             (i + static_cast<des::SimTime>(j)) * ser +
                             static_cast<des::SimTime>(j) * prop_mid_;
      if (a > t) break;
      // Replay the reservation this packet has already made.
      LinkState& ls = links_[path[j]];
      ls.busy_until = std::max(ls.busy_until, a + ser);
      credit_link(path[j], a, ser, 1);
    }
    if (completion_i <= t) continue;  // fully delivered already
    Walker& w = m.walkers[i];
    w.msg = &m;
    if (j == 0) {
      // Packet hasn't started its first hop.  In the semaphore model every
      // packet queues on link 0 at injection, so its FIFO slot there
      // predates any message injected after the flight; replay that claim
      // now (interval [a(i,0), a(i,0)+ser] is still back-to-back exact)
      // instead of letting a later walker reserve ahead of it.
      const des::SimTime a0 = f.start + static_cast<des::SimTime>(i) * ser;
      LinkState& ls0 = links_[path[0]];
      ls0.busy_until = std::max(ls0.busy_until, a0 + ser);
      credit_link(path[0], a0, ser, 1);
      j = 1;
      if (j == path.size()) {
        w.next_hop = static_cast<std::uint32_t>(path.size());
        w.event = engine_.schedule_raw_at(completion_i, &walker_arrive_cb, &w);
        ++m.remaining;
        continue;
      }
    }
    if (j < path.size()) {
      // Pending event: arrival at link j (a future uncontended arrival
      // stays correct — everything upstream of it already happened).
      w.next_hop = static_cast<std::uint32_t>(j);
      const des::SimTime a = f.start +
                             (i + static_cast<des::SimTime>(j)) * ser +
                             static_cast<des::SimTime>(j) * prop_mid_;
      w.event = engine_.schedule_raw_at(a, &walker_arrive_cb, &w);
    } else {
      // All links traversed; only the final wire flight remains.
      w.next_hop = static_cast<std::uint32_t>(path.size());
      w.event = engine_.schedule_raw_at(completion_i, &walker_arrive_cb, &w);
    }
    ++m.remaining;
  }
  // The walk inherits the flight's in-flight marks on every path link.
  for (const LinkId l : path) links_[l].flight = kNoFlight;
  release_flight(f.slot);
}

// ------------------------------------------------------- tier 2: walkers

void SimNetwork::begin_walk(NodeId src, NodeId dst,
                            const std::vector<LinkId>& path, des::SimTime ser,
                            std::uint32_t packets, DoneFn done, void* ctx) {
  WalkMessage& m = acquire_walk();
  m.path = &path;
  m.ser = ser;
  m.remaining = packets;
  m.count = packets;
  m.src = src;
  m.dst = dst;
  m.done_fn = done;
  m.done_ctx = ctx;
  m.from_flight = false;
  m.active = true;
  for (const LinkId l : path) ++links_[l].inflight;
  // All packets reach the first link now; reserving in index order is the
  // FIFO order the semaphore model granted in.
  for (std::uint32_t i = 0; i < packets; ++i) {
    Walker& w = m.walkers[i];
    w.msg = &m;
    w.next_hop = 0;
    advance_walker(w);
  }
}

void SimNetwork::walker_arrive_cb(void* ctx) {
  Walker& w = *static_cast<Walker*>(ctx);
  WalkMessage& m = *w.msg;
  if (w.next_hop == m.path->size()) {
    m.net->finish_walk_packet(m);
  } else {
    m.net->advance_walker(w);
  }
}

void SimNetwork::advance_walker(Walker& w) {
  WalkMessage& m = *w.msg;
  const std::vector<LinkId>& path = *m.path;
  const LinkId l = path[w.next_hop];
  LinkState& ls = links_[l];
  // Arrival-order reservation == semaphore FIFO grant order: whoever's
  // arrival event runs first serializes first, back to back.
  const des::SimTime start = std::max(engine_.now(), ls.busy_until);
  const des::SimTime end = start + m.ser;
  ls.busy_until = end;
  credit_link(l, start, m.ser, 1);
  ++w.next_hop;
  const bool last = w.next_hop == path.size();
  ++stats_.walker_hop_events;
  w.event = engine_.schedule_raw_at(end + (last ? prop_last_ : prop_mid_),
                                    &walker_arrive_cb, &w);
}

void SimNetwork::finish_walk_packet(WalkMessage& m) {
  if (--m.remaining != 0) return;
  for (const LinkId l : *m.path) --links_[l].inflight;
  if (!m.from_flight) ++stats_.messages_walked;
  const DoneFn done = m.done_fn;
  void* ctx = m.done_ctx;
  release_walk(m.slot);
  done(ctx, XferStatus::kOk);
}

// ------------------------------------------------------- fault machinery

void SimNetwork::enable_faults() {
  if (faults_enabled_) return;
  faults_enabled_ = true;
  node_down_.assign(topo_.node_count(), 0);
  link_down_.assign(topo_.link_count(), 0);
}

void SimNetwork::set_node_up(NodeId node, bool up) {
  enable_faults();
  POLARIS_CHECK(node < topo_.node_count());
  if ((node_down_[node] != 0) == !up) return;
  node_down_[node] = up ? 0 : 1;
  if (up) return;
  // Kill every in-flight message with an endpoint on the dead node.  Both
  // pools are scanned (they stay small: high-watermark of concurrent
  // messages); a crash is far off the per-message hot path.
  for (Flight& f : flights_) {
    if (f.active && (f.src == node || f.dst == node)) {
      kill_flight(f, XferStatus::kNodeDown);
    }
  }
  for (WalkMessage& m : walks_) {
    if (m.active && (m.src == node || m.dst == node)) {
      kill_walk(m, XferStatus::kNodeDown);
    }
  }
}

void SimNetwork::set_link_up(LinkId link, bool up) {
  enable_faults();
  POLARIS_CHECK(link < topo_.link_count());
  if ((link_down_[link] != 0) == !up) return;
  link_down_[link] = up ? 0 : 1;
  if (up) return;
  // At most one flight can hold the link (flights are pairwise
  // link-disjoint), and it is the registered exclusive holder.
  const std::uint32_t fs = links_[link].flight;
  if (fs != kNoFlight) kill_flight(flights_[fs], XferStatus::kLinkDown);
  for (WalkMessage& m : walks_) {
    if (!m.active) continue;
    for (const LinkId l : *m.path) {
      if (l == link) {
        kill_walk(m, XferStatus::kLinkDown);
        break;
      }
    }
  }
}

void SimNetwork::deliver_async(DoneFn done, void* ctx, XferStatus status) {
  RawTransfer& rt = acquire_raw();
  rt.done = done;
  rt.ctx = ctx;
  rt.status = status;
  engine_.schedule_raw_after(0, &deliver_status_cb, &rt);
}

void SimNetwork::deliver_status_cb(void* ctx) {
  RawTransfer& rt = *static_cast<RawTransfer*>(ctx);
  SimNetwork* net = rt.net;
  const DoneFn done = rt.done;
  void* done_ctx = rt.ctx;
  const XferStatus status = rt.status;
  net->release_raw(rt.slot);
  done(done_ctx, status);
}

void SimNetwork::kill_flight(Flight& f, XferStatus status) {
  engine_.cancel(f.completion);
  for (const LinkId l : *f.path) {
    LinkState& ls = links_[l];
    --ls.inflight;
    ls.flight = kNoFlight;
  }
  ++stats_.messages_dropped;
  const DoneFn done = f.done_fn;
  void* ctx = f.done_ctx;
  release_flight(f.slot);
  deliver_async(done, ctx, status);
}

void SimNetwork::kill_walk(WalkMessage& m, XferStatus status) {
  // Every packet's pending event is cancelled; already-delivered packets
  // hold stale EventIds, for which cancel() is a safe no-op.
  for (std::uint32_t i = 0; i < m.count; ++i) {
    engine_.cancel(m.walkers[i].event);
  }
  for (const LinkId l : *m.path) --links_[l].inflight;
  ++stats_.messages_dropped;
  const DoneFn done = m.done_fn;
  void* ctx = m.done_ctx;
  release_walk(m.slot);
  deliver_async(done, ctx, status);
}

// ------------------------------------------------------------ bookkeeping

void SimNetwork::credit_link(LinkId l, des::SimTime begin, des::SimTime ser,
                             std::uint32_t count) {
  const des::SimTime busy = ser * static_cast<des::SimTime>(count);
  link_busy_ticks_[l] += busy;
  stats_.total_link_busy_s += des::to_seconds(busy);
  if (tracer_) {
    // One span per reservation; a bypassed message credits each link with a
    // single merged span whose duration covers all its packets.
    tracer_->complete_span(link_track(l), busy_id_, cat_link_id_, begin,
                           busy);
  }
}

void SimNetwork::resume_awaiter_cb(void* ctx, XferStatus status) {
  auto& awaiter = *static_cast<InjectAwaiter*>(ctx);
  awaiter.status = status;
  awaiter.handle.resume();
}

SimNetwork::Flight& SimNetwork::acquire_flight() {
  if (!flight_free_.empty()) {
    const std::uint32_t slot = flight_free_.back();
    flight_free_.pop_back();
    return flights_[slot];
  }
  const auto slot = static_cast<std::uint32_t>(flights_.size());
  flights_.emplace_back();
  Flight& f = flights_.back();
  f.net = this;
  f.slot = slot;
  return f;
}

void SimNetwork::release_flight(std::uint32_t slot) {
  flights_[slot].done_fn = nullptr;
  flights_[slot].done_ctx = nullptr;
  flights_[slot].active = false;
  flight_free_.push_back(slot);
}

SimNetwork::WalkMessage& SimNetwork::acquire_walk() {
  if (!walk_free_.empty()) {
    const std::uint32_t slot = walk_free_.back();
    walk_free_.pop_back();
    return walks_[slot];
  }
  const auto slot = static_cast<std::uint32_t>(walks_.size());
  walks_.emplace_back();
  WalkMessage& m = walks_.back();
  m.net = this;
  m.slot = slot;
  return m;
}

void SimNetwork::release_walk(std::uint32_t slot) {
  walks_[slot].done_fn = nullptr;
  walks_[slot].done_ctx = nullptr;
  walks_[slot].active = false;
  walk_free_.push_back(slot);
}

SimNetwork::RawTransfer& SimNetwork::acquire_raw() {
  if (!raw_free_.empty()) {
    const std::uint32_t slot = raw_free_.back();
    raw_free_.pop_back();
    return raw_transfers_[slot];
  }
  const auto slot = static_cast<std::uint32_t>(raw_transfers_.size());
  raw_transfers_.emplace_back();
  RawTransfer& rt = raw_transfers_.back();
  rt.net = this;
  rt.slot = slot;
  return rt;
}

void SimNetwork::release_raw(std::uint32_t slot) {
  raw_transfers_[slot].done = nullptr;
  raw_transfers_[slot].ctx = nullptr;
  raw_free_.push_back(slot);
}

// ---------------------------------------------------------------- circuits

bool SimNetwork::CircuitCache::touch(NodeId d) {
  for (std::uint32_t i = 0; i < size; ++i) {
    if (dst[i] == d) {
      for (std::uint32_t j = i; j > 0; --j) dst[j] = dst[j - 1];
      dst[0] = d;
      return true;
    }
  }
  return false;
}

void SimNetwork::CircuitCache::insert(NodeId d) {
  if (size < dst.size()) ++size;
  for (std::uint32_t j = size - 1; j > 0; --j) dst[j] = dst[j - 1];
  dst[0] = d;
}

bool SimNetwork::circuit_ready(NodeId src, NodeId dst) {
  CircuitCache& cache = circuits_[src];
  if (cache.touch(dst)) {
    ++stats_.circuit_hits;
    if (tracer_) {
      tracer_->instant(circuit_track_,
                       "hit " + std::to_string(src) + "->" +
                           std::to_string(dst),
                       "circuit");
    }
    return true;
  }
  ++stats_.circuit_misses;
  if (tracer_) {
    tracer_->complete_span(circuit_track_,
                           "setup " + std::to_string(src) + "->" +
                               std::to_string(dst),
                           "circuit", engine_.now(),
                           des::from_seconds(params_.circuit_setup));
  }
  // Install before the delay so concurrent senders to the same destination
  // pay setup once (optimistic: their data rides the path being set up).
  cache.insert(dst);
  return false;
}

des::Task<void> SimNetwork::ensure_circuit(NodeId src, NodeId dst) {
  if (circuit_ready(src, dst)) co_return;
  co_await des::delay(engine_, des::from_seconds(params_.circuit_setup));
}

// ------------------------------------------------------------------ queries

double SimNetwork::uncongested_seconds(NodeId src, NodeId dst,
                                       std::uint64_t bytes,
                                       bool assume_circuit) const {
  if (src == dst) return static_cast<double>(bytes) / params_.copy_bw;
  const auto h = topo_.hop_count(src, dst);
  const PacketPlan plan = plan_packets(bytes);
  const double ser =
      static_cast<double>(plan.bytes_per_packet) / params_.link_bw;
  double t = static_cast<double>(plan.count + h - 1) * ser +
             params_.path_latency(static_cast<int>(h) - 1);
  if (params_.circuit_setup > 0.0 && !assume_circuit) {
    t += params_.circuit_setup;
  }
  return t;
}

double SimNetwork::link_busy_seconds(LinkId id) const {
  POLARIS_CHECK(id < link_busy_ticks_.size());
  return des::to_seconds(link_busy_ticks_[id]);
}

void SimNetwork::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  if (bound_tracer_ == &tracer) return;  // rebind after detach_tracer
  bound_tracer_ = &tracer;
  // The per-reservation link span is the hottest record site in the
  // simulator: cache its interned names.  Circuit spans keep dynamic
  // "src->dst" names (cold, one per setup/hit).
  busy_id_ = tracer.intern("busy");
  cat_link_id_ = tracer.intern("link");
  link_tracks_.assign(topo_.link_count(), kNoTrack);
  if (params_.circuit_setup > 0.0) {
    circuit_track_ = tracer.add_track("links", "circuits");
  }
}

obs::TrackId SimNetwork::link_track(LinkId id) {
  obs::TrackId& track = link_tracks_[id];
  if (track == kNoTrack) {
    track = tracer_->add_track("links", "link " + std::to_string(id));
  }
  return track;
}

}  // namespace polaris::fabric
