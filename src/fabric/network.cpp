#include "polaris/fabric/network.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::fabric {

SimNetwork::SimNetwork(des::Engine& engine, FabricParams params,
                       const Topology& topology)
    : engine_(engine), params_(std::move(params)), topo_(topology) {
  POLARIS_CHECK(params_.link_bw > 0 && params_.mtu > 0);
  links_.reserve(topo_.link_count());
  for (std::size_t i = 0; i < topo_.link_count(); ++i) {
    links_.push_back(std::make_unique<des::Semaphore>(engine_, 1));
  }
  link_busy_s_.assign(topo_.link_count(), 0.0);
  if (params_.circuit_setup > 0.0) {
    circuits_.resize(topo_.node_count());
  }
}

SimNetwork::PacketPlan SimNetwork::plan_packets(std::uint64_t bytes) const {
  PacketPlan plan;
  const std::uint64_t raw =
      (bytes + params_.mtu - 1) / params_.mtu;  // ceil-div
  plan.count = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(raw, 1, kMaxPackets));
  plan.bytes_per_packet = (bytes + plan.count - 1) / plan.count;
  if (plan.bytes_per_packet == 0) plan.bytes_per_packet = 1;
  return plan;
}

des::Task<void> SimNetwork::transfer(NodeId src, NodeId dst,
                                     std::uint64_t bytes) {
  POLARIS_CHECK(src < topo_.node_count() && dst < topo_.node_count());
  ++stats_.messages;
  stats_.bytes += bytes;

  if (src == dst) {
    // Intra-node: one host copy.
    const double t = static_cast<double>(bytes) / params_.copy_bw;
    co_await des::delay(engine_, des::from_seconds(t));
    co_return;
  }

  if (params_.circuit_setup > 0.0) {
    co_await ensure_circuit(src, dst);
  }

  const std::vector<LinkId> path = topo_.route(src, dst);  // copy: coroutine
  const PacketPlan plan = plan_packets(bytes);
  stats_.packets += plan.count;

  // Launch one sub-process per packet; they pipeline through the per-link
  // FIFO semaphores.  `remaining`/`done` live in this frame, which outlives
  // the packets because we await `done` below.
  std::uint32_t remaining = plan.count;
  des::Trigger done(engine_);
  for (std::uint32_t i = 0; i < plan.count; ++i) {
    engine_.spawn([](SimNetwork& net, std::vector<LinkId> p,
                     std::uint64_t pkt, std::uint32_t& rem,
                     des::Trigger& trig) -> des::Task<void> {
      co_await net.send_packet(std::move(p), pkt);
      if (--rem == 0) trig.fire();
    }(*this, path, plan.bytes_per_packet, remaining, done));
  }
  co_await done.wait();
}

des::Task<void> SimNetwork::send_packet(std::vector<LinkId> path,
                                        std::uint64_t pkt_bytes) {
  const des::SimTime ser = serialize_time(pkt_bytes);
  const auto hops = path.size();
  for (std::size_t j = 0; j < hops; ++j) {
    const LinkId l = path[j];
    co_await links_[l]->acquire();
    co_await des::delay(engine_, ser);
    links_[l]->release();
    link_busy_s_[l] += des::to_seconds(ser);
    stats_.total_link_busy_s += des::to_seconds(ser);
    if (tracer_) {
      tracer_->complete_span(link_track(l), "busy", "link",
                             engine_.now() - ser, ser);
    }
    // Propagation: wire always; switch forwarding except after final link.
    double prop = params_.wire_latency;
    if (j + 1 < hops) prop += params_.switch_latency;
    co_await des::delay(engine_, des::from_seconds(prop));
  }
}

des::Task<void> SimNetwork::ensure_circuit(NodeId src, NodeId dst) {
  CircuitCache& cache = circuits_[src];
  if (auto it = cache.index.find(dst); it != cache.index.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    ++stats_.circuit_hits;
    if (tracer_) {
      tracer_->instant(circuit_track_,
                       "hit " + std::to_string(src) + "->" +
                           std::to_string(dst),
                       "circuit");
    }
    co_return;
  }
  ++stats_.circuit_misses;
  if (tracer_) {
    tracer_->complete_span(circuit_track_,
                           "setup " + std::to_string(src) + "->" +
                               std::to_string(dst),
                           "circuit", engine_.now(),
                           des::from_seconds(params_.circuit_setup));
  }
  // Install before the delay so concurrent senders to the same destination
  // pay setup once (optimistic: their data rides the path being set up).
  cache.lru.push_front(dst);
  cache.index[dst] = cache.lru.begin();
  if (cache.lru.size() > kCircuitsPerSource) {
    cache.index.erase(cache.lru.back());
    cache.lru.pop_back();
  }
  co_await des::delay(engine_, des::from_seconds(params_.circuit_setup));
}

double SimNetwork::uncongested_seconds(NodeId src, NodeId dst,
                                       std::uint64_t bytes,
                                       bool assume_circuit) const {
  if (src == dst) return static_cast<double>(bytes) / params_.copy_bw;
  const auto h = topo_.hop_count(src, dst);
  const PacketPlan plan = plan_packets(bytes);
  const double ser =
      static_cast<double>(plan.bytes_per_packet) / params_.link_bw;
  double t = static_cast<double>(plan.count + h - 1) * ser +
             params_.path_latency(static_cast<int>(h) - 1);
  if (params_.circuit_setup > 0.0 && !assume_circuit) {
    t += params_.circuit_setup;
  }
  return t;
}

double SimNetwork::link_busy_seconds(LinkId id) const {
  POLARIS_CHECK(id < link_busy_s_.size());
  return link_busy_s_[id];
}

void SimNetwork::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  link_tracks_.assign(topo_.link_count(), kNoTrack);
  if (params_.circuit_setup > 0.0) {
    circuit_track_ = tracer.add_track("links", "circuits");
  }
}

obs::TrackId SimNetwork::link_track(LinkId id) {
  obs::TrackId& track = link_tracks_[id];
  if (track == kNoTrack) {
    track = tracer_->add_track("links", "link " + std::to_string(id));
  }
  return track;
}

}  // namespace polaris::fabric
