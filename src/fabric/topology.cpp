#include "polaris/fabric/topology.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::fabric {

namespace {
std::uint64_t pair_key(DeviceId u, DeviceId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

const std::vector<LinkId>& Topology::route(NodeId src, NodeId dst) const {
  POLARIS_CHECK(src < node_count_ && dst < node_count_);
  const auto key = pair_key(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    return it->second;
  }
  auto [it, inserted] = route_cache_.emplace(key, compute_route(src, dst));
  return it->second;
}

const std::vector<LinkId>& Topology::route_k(NodeId src, NodeId dst,
                                             std::size_t k) const {
  if (k == 0) return route(src, dst);  // the oblivious path, shared cache
  POLARIS_CHECK(src < node_count_ && dst < node_count_);
  POLARIS_CHECK_MSG(k < route_choices(src, dst), "route choice out of range");
  // Alternate paths get their own cache keyed (src, dst, k).  24 bits per
  // node and 16 for k bound the packing; checked so growth past 16M hosts
  // fails loudly instead of aliasing.
  POLARIS_CHECK(node_count_ < (1u << 24) && k < (1u << 16));
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 40) |
                            (static_cast<std::uint64_t>(dst) << 16) |
                            static_cast<std::uint64_t>(k);
  if (auto it = alt_route_cache_.find(key); it != alt_route_cache_.end()) {
    return it->second;
  }
  auto [it, inserted] =
      alt_route_cache_.emplace(key, compute_route_k(src, dst, k));
  return it->second;
}

std::vector<LinkId> Topology::compute_route_k(NodeId src, NodeId dst,
                                              std::size_t k) const {
  (void)src;
  (void)dst;
  (void)k;
  POLARIS_CHECK_MSG(false, "topology reported alternates it cannot compute");
  return {};
}

std::size_t Topology::scan_diameter(std::size_t max_nodes) const {
  const std::size_t n = std::min(node_count_, max_nodes);
  std::size_t d = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) d = std::max(d, hop_count(a, b));
    }
  }
  return d;
}

LinkId Topology::link(DeviceId u, DeviceId v) {
  POLARIS_CHECK_MSG(u != v, "self-links are not allowed");
  const auto key = pair_key(u, v);
  if (auto it = link_ids_.find(key); it != link_ids_.end()) return it->second;
  const auto id = static_cast<LinkId>(link_ends_.size());
  link_ids_.emplace(key, id);
  link_ends_.emplace_back(u, v);
  return id;
}

LinkId Topology::link_between(DeviceId u, DeviceId v) const {
  const auto it = link_ids_.find(pair_key(u, v));
  POLARIS_CHECK_MSG(it != link_ids_.end(),
                    "routing produced a non-existent link");
  return it->second;
}

// ------------------------------------------------------------------ Crossbar

Crossbar::Crossbar(std::size_t nodes) : Topology(nodes, 1) {
  POLARIS_CHECK(nodes >= 2);
  const DeviceId sw = static_cast<DeviceId>(nodes);  // the single switch
  for (DeviceId h = 0; h < nodes; ++h) {
    link(h, sw);
    link(sw, h);
  }
}

std::vector<LinkId> Crossbar::compute_route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  const DeviceId sw = static_cast<DeviceId>(node_count_);
  return {link_between(src, sw), link_between(sw, dst)};
}

// ------------------------------------------------------------------- FatTree

FatTree::FatTree(std::size_t k)
    : Topology(k * k * k / 4, k * k + k * k / 4), k_(k) {
  POLARIS_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree radix must be even");
  const std::size_t half = k / 2;
  // Hosts <-> edge switches.
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      const DeviceId edge = edge_switch(pod, e);
      for (std::size_t h = 0; h < half; ++h) {
        const auto host = static_cast<DeviceId>(
            pod * half * half + e * half + h);
        link(host, edge);
        link(edge, host);
      }
      // Edge <-> aggregation within the pod (full bipartite).
      for (std::size_t a = 0; a < half; ++a) {
        const DeviceId agg = agg_switch(pod, a);
        link(edge, agg);
        link(agg, edge);
      }
    }
    // Aggregation <-> core: agg a connects to cores [a*half, (a+1)*half).
    for (std::size_t a = 0; a < half; ++a) {
      const DeviceId agg = agg_switch(pod, a);
      for (std::size_t c = 0; c < half; ++c) {
        const DeviceId core = core_switch(a * half + c);
        link(agg, core);
        link(core, agg);
      }
    }
  }
}

std::string FatTree::name() const {
  return "fat-tree-k" + std::to_string(k_);
}

std::size_t FatTree::radix_for(std::size_t nodes) {
  std::size_t k = 2;
  while (k * k * k / 4 < nodes) k += 2;
  return k;
}

DeviceId FatTree::edge_switch(std::size_t pod, std::size_t idx) const {
  return static_cast<DeviceId>(node_count_ + pod * (k_ / 2) + idx);
}

DeviceId FatTree::agg_switch(std::size_t pod, std::size_t idx) const {
  return static_cast<DeviceId>(node_count_ + k_ * (k_ / 2) + pod * (k_ / 2) +
                               idx);
}

DeviceId FatTree::core_switch(std::size_t idx) const {
  return static_cast<DeviceId>(node_count_ + 2 * k_ * (k_ / 2) + idx);
}

std::vector<LinkId> FatTree::compute_route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  const std::size_t half = k_ / 2;
  const std::size_t hosts_per_edge = half;
  const std::size_t hosts_per_pod = half * half;

  const std::size_t src_pod = src / hosts_per_pod;
  const std::size_t dst_pod = dst / hosts_per_pod;
  const std::size_t src_edge = (src % hosts_per_pod) / hosts_per_edge;
  const std::size_t dst_edge = (dst % hosts_per_pod) / hosts_per_edge;

  std::vector<LinkId> path;
  const DeviceId se = edge_switch(src_pod, src_edge);
  path.push_back(link_between(src, se));

  if (src_pod == dst_pod && src_edge == dst_edge) {
    path.push_back(link_between(se, dst));
    return path;
  }

  // Destination-based deterministic uplink selection spreads flows.
  const std::size_t agg_idx = dst % half;
  if (src_pod == dst_pod) {
    const DeviceId agg = agg_switch(src_pod, agg_idx);
    const DeviceId de = edge_switch(dst_pod, dst_edge);
    path.push_back(link_between(se, agg));
    path.push_back(link_between(agg, de));
    path.push_back(link_between(de, dst));
    return path;
  }

  const std::size_t core_idx =
      agg_idx * half + (dst / half) % half;  // within agg's uplink group
  const DeviceId up_agg = agg_switch(src_pod, agg_idx);
  const DeviceId core = core_switch(core_idx);
  const DeviceId down_agg = agg_switch(dst_pod, agg_idx);
  const DeviceId de = edge_switch(dst_pod, dst_edge);
  path.push_back(link_between(se, up_agg));
  path.push_back(link_between(up_agg, core));
  path.push_back(link_between(core, down_agg));
  path.push_back(link_between(down_agg, de));
  path.push_back(link_between(de, dst));
  return path;
}

std::size_t FatTree::route_choices(NodeId src, NodeId dst) const {
  if (src == dst) return 1;
  const std::size_t half = k_ / 2;
  const std::size_t hosts_per_pod = half * half;
  if (src / hosts_per_pod != dst / hosts_per_pod) {
    return half * half;  // one path per core switch
  }
  if ((src % hosts_per_pod) / half != (dst % hosts_per_pod) / half) {
    return half;  // one path per aggregation switch in the pod
  }
  return 1;  // same edge switch: single two-link path
}

std::vector<LinkId> FatTree::compute_route_k(NodeId src, NodeId dst,
                                             std::size_t k) const {
  const std::size_t half = k_ / 2;
  const std::size_t hosts_per_pod = half * half;
  const std::size_t src_pod = src / hosts_per_pod;
  const std::size_t dst_pod = dst / hosts_per_pod;
  const std::size_t src_edge = (src % hosts_per_pod) / half;
  const std::size_t dst_edge = (dst % hosts_per_pod) / half;

  std::vector<LinkId> path;
  const DeviceId se = edge_switch(src_pod, src_edge);
  const DeviceId de = edge_switch(dst_pod, dst_edge);
  path.push_back(link_between(src, se));

  if (src_pod == dst_pod) {
    // Rotate the aggregation choice off the oblivious dst % half pick, so
    // k == 0 would reproduce compute_route exactly (it is never called
    // with 0; the rotation keeps the two enumerations aligned anyway).
    const DeviceId agg = agg_switch(src_pod, (dst % half + k) % half);
    path.push_back(link_between(se, agg));
    path.push_back(link_between(agg, de));
    path.push_back(link_between(de, dst));
    return path;
  }

  // Cross-pod: each core switch gives exactly one minimal path, and the
  // core determines the aggregation switch on both sides (core c hangs off
  // agg c / half in every pod).  Rotate off the oblivious core.
  const std::size_t base_core = (dst % half) * half + (dst / half) % half;
  const std::size_t core_idx = (base_core + k) % (half * half);
  const std::size_t agg_idx = core_idx / half;
  const DeviceId up_agg = agg_switch(src_pod, agg_idx);
  const DeviceId core = core_switch(core_idx);
  const DeviceId down_agg = agg_switch(dst_pod, agg_idx);
  path.push_back(link_between(se, up_agg));
  path.push_back(link_between(up_agg, core));
  path.push_back(link_between(core, down_agg));
  path.push_back(link_between(down_agg, de));
  path.push_back(link_between(de, dst));
  return path;
}

// -------------------------------------------------------------------- Torus2D

Torus2D::Torus2D(std::size_t width, std::size_t height)
    : Topology(width * height, width * height), w_(width), h_(height) {
  POLARIS_CHECK(width >= 2 && height >= 2);
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const DeviceId r = router(x, y);
      const auto host = static_cast<DeviceId>(y * w_ + x);
      link(host, r);
      link(r, host);
      const DeviceId xp = router((x + 1) % w_, y);
      const DeviceId yp = router(x, (y + 1) % h_);
      link(r, xp);
      link(xp, r);
      link(r, yp);
      link(yp, r);
    }
  }
}

std::string Torus2D::name() const {
  return "torus2d-" + std::to_string(w_) + "x" + std::to_string(h_);
}

DeviceId Torus2D::router(std::size_t x, std::size_t y) const {
  return static_cast<DeviceId>(node_count_ + y * w_ + x);
}

namespace {
/// Steps from a to b along a ring of size n, shortest direction.
/// Returns +1/-1 step and count.
std::pair<int, std::size_t> ring_steps(std::size_t a, std::size_t b,
                                       std::size_t n) {
  if (a == b) return {0, 0};
  const std::size_t fwd = (b + n - a) % n;
  const std::size_t bwd = n - fwd;
  if (fwd <= bwd) return {+1, fwd};
  return {-1, bwd};
}
}  // namespace

std::vector<LinkId> Torus2D::compute_route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  std::size_t x = src % w_, y = src / w_;
  const std::size_t dx = dst % w_, dy = dst / w_;

  std::vector<LinkId> path;
  path.push_back(link_between(src, router(x, y)));

  auto [sx, nx] = ring_steps(x, dx, w_);
  for (std::size_t i = 0; i < nx; ++i) {
    const std::size_t x2 = (x + w_ + static_cast<std::size_t>(sx)) % w_;
    path.push_back(link_between(router(x, y), router(x2, y)));
    x = x2;
  }
  auto [sy, ny] = ring_steps(y, dy, h_);
  for (std::size_t i = 0; i < ny; ++i) {
    const std::size_t y2 = (y + h_ + static_cast<std::size_t>(sy)) % h_;
    path.push_back(link_between(router(x, y), router(x, y2)));
    y = y2;
  }
  path.push_back(link_between(router(x, y), dst));
  return path;
}

std::size_t Torus2D::route_choices(NodeId src, NodeId dst) const {
  if (src == dst) return 1;
  const bool moves_x = src % w_ != dst % w_;
  const bool moves_y = src / w_ != dst / w_;
  return (moves_x && moves_y) ? 2 : 1;
}

std::vector<LinkId> Torus2D::compute_route_k(NodeId src, NodeId dst,
                                             std::size_t k) const {
  POLARIS_CHECK(k == 1);  // the only alternate: y-then-x dimension order
  std::size_t x = src % w_, y = src / w_;
  const std::size_t dx = dst % w_, dy = dst / w_;

  std::vector<LinkId> path;
  path.push_back(link_between(src, router(x, y)));

  auto [sy, ny] = ring_steps(y, dy, h_);
  for (std::size_t i = 0; i < ny; ++i) {
    const std::size_t y2 = (y + h_ + static_cast<std::size_t>(sy)) % h_;
    path.push_back(link_between(router(x, y), router(x, y2)));
    y = y2;
  }
  auto [sx, nx] = ring_steps(x, dx, w_);
  for (std::size_t i = 0; i < nx; ++i) {
    const std::size_t x2 = (x + w_ + static_cast<std::size_t>(sx)) % w_;
    path.push_back(link_between(router(x, y), router(x2, y)));
    x = x2;
  }
  path.push_back(link_between(router(x, y), dst));
  return path;
}

// -------------------------------------------------------------------- Torus3D

Torus3D::Torus3D(std::size_t x, std::size_t y, std::size_t z)
    : Topology(x * y * z, x * y * z), nx_(x), ny_(y), nz_(z) {
  POLARIS_CHECK(x >= 2 && y >= 2 && z >= 2);
  for (std::size_t k = 0; k < nz_; ++k) {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        const DeviceId r = router(i, j, k);
        const auto host =
            static_cast<DeviceId>((k * ny_ + j) * nx_ + i);
        link(host, r);
        link(r, host);
        const DeviceId xp = router((i + 1) % nx_, j, k);
        const DeviceId yp = router(i, (j + 1) % ny_, k);
        const DeviceId zp = router(i, j, (k + 1) % nz_);
        link(r, xp);
        link(xp, r);
        link(r, yp);
        link(yp, r);
        link(r, zp);
        link(zp, r);
      }
    }
  }
}

std::string Torus3D::name() const {
  return "torus3d-" + std::to_string(nx_) + "x" + std::to_string(ny_) + "x" +
         std::to_string(nz_);
}

DeviceId Torus3D::router(std::size_t x, std::size_t y, std::size_t z) const {
  return static_cast<DeviceId>(node_count_ + (z * ny_ + y) * nx_ + x);
}

std::vector<LinkId> Torus3D::compute_route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  std::size_t x = src % nx_;
  std::size_t y = (src / nx_) % ny_;
  std::size_t z = src / (nx_ * ny_);
  const std::size_t dx = dst % nx_;
  const std::size_t dy = (dst / nx_) % ny_;
  const std::size_t dz = dst / (nx_ * ny_);

  std::vector<LinkId> path;
  path.push_back(link_between(src, router(x, y, z)));

  auto walk = [&](std::size_t& cur, std::size_t target, std::size_t n,
                  auto make_router) {
    auto [step, count] = ring_steps(cur, target, n);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t nxt =
          (cur + n + static_cast<std::size_t>(step)) % n;
      const DeviceId from = make_router(cur);
      const DeviceId to = make_router(nxt);
      path.push_back(link_between(from, to));
      cur = nxt;
    }
  };
  walk(x, dx, nx_, [&](std::size_t v) { return router(v, y, z); });
  walk(y, dy, ny_, [&](std::size_t v) { return router(x, v, z); });
  walk(z, dz, nz_, [&](std::size_t v) { return router(x, y, v); });

  path.push_back(link_between(router(x, y, z), dst));
  return path;
}

namespace {
constexpr std::size_t kFactorial[4] = {1, 1, 2, 6};
}  // namespace

std::size_t Torus3D::route_choices(NodeId src, NodeId dst) const {
  if (src == dst) return 1;
  std::size_t moving = 0;
  if (src % nx_ != dst % nx_) ++moving;
  if ((src / nx_) % ny_ != (dst / nx_) % ny_) ++moving;
  if (src / (nx_ * ny_) != dst / (nx_ * ny_)) ++moving;
  return kFactorial[moving];
}

std::vector<LinkId> Torus3D::compute_route_k(NodeId src, NodeId dst,
                                             std::size_t k) const {
  std::size_t cur[3] = {src % nx_, (src / nx_) % ny_, src / (nx_ * ny_)};
  const std::size_t tgt[3] = {dst % nx_, (dst / nx_) % ny_,
                              dst / (nx_ * ny_)};
  const std::size_t ext[3] = {nx_, ny_, nz_};

  // The k-th lexicographic permutation of the moving dimensions; the
  // sorted (identity) order is k == 0 == the oblivious x-y-z walk.
  std::vector<std::size_t> order;
  for (std::size_t d = 0; d < 3; ++d) {
    if (cur[d] != tgt[d]) order.push_back(d);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const bool more = std::next_permutation(order.begin(), order.end());
    POLARIS_CHECK_MSG(more, "route choice exceeds dimension permutations");
  }

  std::vector<LinkId> path;
  path.push_back(link_between(src, router(cur[0], cur[1], cur[2])));
  for (const std::size_t d : order) {
    auto [step, count] = ring_steps(cur[d], tgt[d], ext[d]);
    for (std::size_t i = 0; i < count; ++i) {
      const DeviceId from = router(cur[0], cur[1], cur[2]);
      cur[d] = (cur[d] + ext[d] + static_cast<std::size_t>(step)) % ext[d];
      path.push_back(link_between(from, router(cur[0], cur[1], cur[2])));
    }
  }
  path.push_back(link_between(router(cur[0], cur[1], cur[2]), dst));
  return path;
}

std::unique_ptr<Topology> make_default_topology(std::size_t nodes) {
  POLARIS_CHECK(nodes >= 2);
  if (nodes <= 16) return std::make_unique<Crossbar>(nodes);
  return std::make_unique<FatTree>(FatTree::radix_for(nodes));
}

}  // namespace polaris::fabric
