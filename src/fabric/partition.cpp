#include "polaris/fabric/partition.hpp"

#include "polaris/support/check.hpp"

namespace polaris::fabric {

Partition make_block_partition(std::size_t nodes,
                               const std::vector<std::size_t>& dims,
                               const FabricParams& params,
                               std::size_t shards) {
  POLARIS_CHECK_MSG(shards >= 1 && shards <= nodes,
                    "shard count must be in [1, node_count]");

  Partition p;
  p.shards = shards;
  p.first_node.resize(shards + 1);
  const std::size_t base = nodes / shards;
  const std::size_t rem = nodes % shards;
  NodeId at = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    p.first_node[s] = at;
    at += static_cast<NodeId>(base + (s < rem ? 1 : 0));
  }
  p.first_node[shards] = static_cast<NodeId>(nodes);

  // Ordered cross-shard pairs: N^2 minus the within-shard blocks.
  std::uint64_t same = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint64_t b = p.shard_size(s);
    same += b * b;
  }
  p.cut_host_pairs =
      static_cast<std::uint64_t>(nodes) * static_cast<std::uint64_t>(nodes) -
      same;

  // Grid topologies (tori) attach each host to its own switch: any
  // distinct-host path is host -> switch -> ... -> switch -> host with at
  // least two switch traversals.  Single-switch and tree fabrics can
  // connect two hosts through one shared edge switch.
  p.min_cut_switch_hops = dims.empty() ? 1 : 2;
  p.lookahead_s =
      params.path_latency(static_cast<int>(p.min_cut_switch_hops));
  return p;
}

Partition make_block_partition(const Topology& topo,
                               const FabricParams& params,
                               std::size_t shards) {
  return make_block_partition(topo.node_count(), topo.dims(), params, shards);
}

}  // namespace polaris::fabric
