#include "polaris/fabric/params.hpp"

#include <stdexcept>

namespace polaris::fabric::fabrics {

FabricParams fast_ethernet() {
  FabricParams p;
  p.name = "fast-ethernet";
  p.link_bw = 12.5e6;  // 100 Mb/s
  p.wire_latency = 500e-9;
  p.switch_latency = 10e-6;  // store-and-forward commodity switch
  p.mtu = 1500;
  p.o_send = 30e-6;  // kernel TCP stack traversal
  p.o_recv = 35e-6;
  p.gap = 40e-6;
  p.os_bypass = false;
  p.rdma = false;
  p.copy_bw = 800e6;  // socket-buffer copy bandwidth
  p.eager_threshold = 64 * 1024;  // rendezvous pointless: always copies
  return p;
}

FabricParams gig_ethernet() {
  FabricParams p;
  p.name = "gig-ethernet";
  p.link_bw = 125e6;  // 1 Gb/s
  p.wire_latency = 300e-9;
  p.switch_latency = 4e-6;
  p.mtu = 1500;
  p.o_send = 22e-6;
  p.o_recv = 25e-6;
  p.gap = 28e-6;
  p.os_bypass = false;
  p.rdma = false;
  p.copy_bw = 800e6;
  p.eager_threshold = 64 * 1024;
  return p;
}

FabricParams myrinet2000() {
  FabricParams p;
  p.name = "myrinet-2000";
  p.link_bw = 250e6;  // 2 Gb/s
  p.wire_latency = 100e-9;
  p.switch_latency = 500e-9;  // cut-through Clos element
  p.mtu = 4096;
  p.o_send = 1.0e-6;  // user-level GM-style injection
  p.o_recv = 1.2e-6;
  p.gap = 2.5e-6;
  p.os_bypass = true;
  p.rdma = false;  // GM-era: remote writes via host agent, model two-sided
  p.copy_bw = 1.2e9;
  p.reg_base = 10e-6;  // pin-down cost (GM registration)
  p.reg_per_page = 0.8e-6;
  p.eager_threshold = 16 * 1024;
  return p;
}

FabricParams quadrics_qsnet() {
  FabricParams p;
  p.name = "quadrics-qsnet";
  p.link_bw = 340e6;
  p.wire_latency = 50e-9;
  p.switch_latency = 300e-9;
  p.mtu = 4096;
  p.o_send = 0.8e-6;
  p.o_recv = 0.9e-6;
  p.gap = 1.8e-6;
  p.os_bypass = true;
  p.rdma = true;  // Elan3 remote DMA
  p.copy_bw = 1.2e9;
  p.reg_base = 0.0;  // Elan MMU: no explicit pin-down
  p.reg_per_page = 0.0;
  p.eager_threshold = 8 * 1024;
  return p;
}

FabricParams infiniband_4x() {
  FabricParams p;
  p.name = "infiniband-4x";
  p.link_bw = 1.0e9;  // 8 Gb/s data rate after 8b/10b
  p.wire_latency = 50e-9;
  p.switch_latency = 200e-9;
  p.mtu = 2048;
  p.o_send = 0.7e-6;
  p.o_recv = 0.8e-6;
  p.gap = 1.5e-6;
  p.os_bypass = true;
  p.rdma = true;
  p.copy_bw = 1.5e9;
  p.reg_base = 25e-6;  // verbs memory registration
  p.reg_per_page = 0.5e-6;
  p.eager_threshold = 8 * 1024;
  return p;
}

FabricParams optical_ocs() {
  FabricParams p;
  p.name = "optical-ocs";
  p.link_bw = 1.25e9;  // 10 Gb/s light path
  p.wire_latency = 100e-9;
  p.switch_latency = 0.0;  // transparent light path once established
  p.mtu = 4096;
  p.o_send = 0.7e-6;
  p.o_recv = 0.8e-6;
  p.gap = 1.5e-6;
  p.os_bypass = true;
  p.rdma = true;
  p.copy_bw = 1.5e9;
  p.circuit_setup = 500e-6;  // MEMS mirror reconfiguration
  p.eager_threshold = 8 * 1024;
  return p;
}

std::vector<FabricParams> all() {
  return {fast_ethernet(), gig_ethernet(),  myrinet2000(),
          quadrics_qsnet(), infiniband_4x(), optical_ocs()};
}

FabricParams by_name(const std::string& name) {
  for (auto& p : all()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown fabric preset: " + name);
}

}  // namespace polaris::fabric::fabrics
