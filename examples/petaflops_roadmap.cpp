// "Launching into the future": when does a commodity cluster reach the
// trans-Petaflops regime, and what does it look like when it does?
//
// Uses the technology-projection and node-architecture models to answer
// the plenary's headline question for several budgets and node archetypes.
//
//   ./petaflops_roadmap [budget_musd]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "polaris/hw/cluster.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main(int argc, char** argv) {
  using namespace polaris;
  const double budget =
      (argc > 1 ? std::atof(argv[1]) : 4.0) * 1e6;  // default $4M

  hw::ClusterDesigner designer;

  std::printf("Commodity cluster roadmap for a %s budget\n\n",
              support::format_dollars(budget).c_str());

  support::Table table("fixed-budget cluster by year and node architecture");
  table.header({"year", "arch", "nodes", "peak", "memory", "power", "racks",
                "Gflops/$"});
  for (double year : {2002.0, 2005.0, 2008.0, 2010.0}) {
    for (hw::NodeArch arch : hw::all_node_archs()) {
      const auto c = designer.fixed_budget(arch, year, budget);
      table.add(static_cast<int>(year), hw::to_string(arch),
                static_cast<unsigned long long>(c.node_count),
                support::format_flops(c.peak_flops()),
                support::format_bytes(
                    static_cast<std::uint64_t>(c.memory_bytes())),
                support::format_watts(c.power_w()),
                support::Table::to_cell(c.racks()),
                support::Table::to_cell(c.flops_per_dollar() / 1e9));
    }
  }
  table.print(std::cout);

  std::printf("\nFirst year each architecture reaches 1 Pflops peak at this "
              "budget (horizon 2015):\n");
  for (hw::NodeArch arch : hw::all_node_archs()) {
    double year = 2016.0;
    for (double y = 2002.0; y <= 2015.0; y += 0.1) {
      if (designer.fixed_budget(arch, y, budget).peak_flops() >= 1e15) {
        year = y;
        break;
      }
    }
    if (year > 2015.0) {
      std::printf("  %-14s not within the horizon\n", hw::to_string(arch));
    } else {
      std::printf("  %-14s %.1f\n", hw::to_string(arch), year);
    }
  }
  std::printf(
      "\nThe talk's claim, quantified: Moore's law alone (conventional\n"
      "nodes) does not deliver a petaflops this decade at commodity\n"
      "budgets; the node-level revolutions (chip multiprocessors, PIM)\n"
      "do.\n");
  return 0;
}
