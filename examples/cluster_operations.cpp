// Operating a 1024-node commodity cluster: resource management and fault
// recovery working together.
//
// Generates a synthetic month of job submissions, schedules it under FCFS
// and EASY backfill, then asks what the machine's failure behaviour means
// for its biggest jobs — system MTBF, detector settings, and the Daly
// checkpoint interval those jobs should use.
//
//   ./cluster_operations
#include <cmath>
#include <cstdio>
#include <iostream>

#include "polaris/fault/checkpoint.hpp"
#include "polaris/fault/detector.hpp"
#include "polaris/fault/failure.hpp"
#include "polaris/sched/scheduler.hpp"
#include "polaris/sched/trace.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;
  constexpr std::size_t kNodes = 1024;

  // -- resource management ---------------------------------------------------
  sched::TraceConfig cfg;
  cfg.jobs = 8000;
  cfg.max_width_exp = 9;  // jobs up to 512 nodes
  cfg.mean_interarrival = 1900.0;  // offered load ~0.85
  auto trace = sched::generate_trace(cfg, 2002);
  std::printf("synthetic trace: %zu jobs, offered load %.2f on %zu nodes\n\n",
              trace.size(), sched::offered_load(trace, kNodes), kNodes);

  support::Table st("scheduling policies on the same trace");
  st.header({"policy", "utilization", "mean wait", "p95 wait",
             "mean bounded slowdown", "backfilled"});
  for (auto policy : {sched::Policy::kFcfs, sched::Policy::kSjf,
                      sched::Policy::kEasyBackfill}) {
    auto jobs = trace;
    const auto m = sched::run_scheduler(jobs, kNodes, policy);
    st.add(sched::to_string(policy),
           support::Table::to_cell(m.utilization),
           support::format_time(m.mean_wait),
           support::format_time(m.p95_wait),
           support::Table::to_cell(m.mean_bounded_slowdown),
           static_cast<unsigned long long>(m.backfilled));
  }
  st.print(std::cout);

  // -- fault recovery ----------------------------------------------------------
  const double node_mtbf = 5.0 * 365 * 86400.0;  // 5-year commodity node
  const double sys_mtbf = fault::system_mtbf_exponential(node_mtbf, kNodes);
  std::printf("\nnode MTBF 5 y  =>  %zu-node system MTBF: %s\n", kNodes,
              support::format_time(sys_mtbf).c_str());

  const auto dq = fault::evaluate_timeout_detector(
      /*period=*/1.0, /*jitter_sigma=*/0.8, /*timeout=*/4.0,
      /*heartbeats=*/100000, /*seed=*/7);
  std::printf("heartbeat detector (1 s period, 4 s timeout): "
              "%.2g false positives/heartbeat, %.1f s detection latency\n",
              dq.false_positive_rate, dq.detection_latency);

  fault::CheckpointConfig cc;
  cc.checkpoint_cost = 300.0;
  cc.restart_cost = 120.0;
  cc.system_mtbf = sys_mtbf;
  const double tau = fault::daly_interval(cc);
  std::printf("full-machine job: Daly checkpoint interval %s, "
              "efficiency %.1f%%\n",
              support::format_time(tau).c_str(),
              100.0 * fault::optimal_efficiency(cc));

  const double sim_eff =
      fault::simulate_efficiency(cc, tau, /*work=*/30 * 86400.0, /*seed=*/3);
  std::printf("Monte-Carlo check over a 30-day job: %.1f%% efficiency\n",
              100.0 * sim_eff);

  std::printf(
      "\nScale explosion (the talk's warning): the same job on future "
      "machines\n");
  support::Table ft("24 h of work vs machine scale (node MTBF 5 y)");
  ft.header({"nodes", "system MTBF", "no-ckpt wall", "Daly wall",
             "Daly interval"});
  for (std::size_t n : {128u, 1024u, 8192u, 65536u}) {
    const auto out =
        fault::wall_time_at_scale(86400.0, node_mtbf, n, 300.0, 120.0);
    ft.add(static_cast<unsigned long long>(n),
           support::format_time(out.system_mtbf_s),
           std::isinf(out.no_checkpoint_wall)
               ? std::string("never")
               : support::format_time(out.no_checkpoint_wall),
           support::format_time(out.daly_wall),
           support::format_time(out.daly_interval_s));
  }
  ft.print(std::cout);
  return 0;
}
