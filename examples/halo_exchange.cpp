// A Beowulf-class 2-D stencil (Jacobi heat equation) run across the
// commodity fabrics of 2002, at several cluster sizes.
//
// Demonstrates the workload library + simulated runtime: the same SPMD
// program, swapped across interconnects, shows where the kernel-TCP
// Ethernet path stops scaling and user-level fabrics keep going.
//
//   ./halo_exchange
#include <cstdio>
#include <iostream>

#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"

int main() {
  using namespace polaris;

  workload::Halo2DConfig cfg;
  cfg.nx = cfg.ny = 256;  // per-rank grid: weak scaling
  cfg.iterations = 20;

  support::Table table("2-D halo exchange, weak scaling, 20 iterations");
  table.header({"fabric", "ranks", "time", "comm%", "Mpoints/s"});

  for (const auto& params : fabric::fabrics::all()) {
    for (std::size_t ranks : {4, 16, 64}) {
      workload::AppResult res;
      simrt::SimWorld world(ranks, params);
      world.launch(workload::make_halo2d(cfg, ranks, &res));
      world.run();
      const double points = static_cast<double>(cfg.nx) * cfg.ny *
                            cfg.iterations * ranks;
      table.add(params.name, ranks, support::format_time(res.elapsed),
                support::Table::to_cell(100.0 * res.comm_fraction),
                support::Table::to_cell(points / res.elapsed / 1e6));
    }
  }
  table.print(std::cout);

  std::printf(
      "\nReading: on all fabrics weak scaling holds (time ~flat with rank\n"
      "count); the comm%% column shows the kernel-TCP fabrics paying an\n"
      "order of magnitude more of their time in communication.\n");
  return 0;
}
