// Quickstart: Polaris in ~80 lines.
//
// Part 1 runs the REAL user-level messaging runtime: four OS threads
// exchange tagged messages and an allreduce over lock-free shared-memory
// rings.  Part 2 runs the SIMULATED cluster: the same kind of SPMD
// program, but as coroutines over a modelled InfiniBand fat tree, which is
// how the paper-scale experiments are produced.
//
//   ./quickstart
#include <cstdio>
#include <span>
#include <vector>

#include "polaris/rt/runtime.hpp"
#include "polaris/simrt/sim_world.hpp"

namespace {

void real_runtime_demo() {
  std::printf("== real shared-memory runtime (4 OS threads) ==\n");
  polaris::rt::ShmWorld world(4);
  world.run([](polaris::rt::Communicator& c) {
    // Tagged point-to-point: rank 0 greets everyone.
    if (c.rank() == 0) {
      for (int dst = 1; dst < c.size(); ++dst) {
        const int payload = 100 + dst;
        c.send(dst, /*tag=*/7,
               {reinterpret_cast<const std::byte*>(&payload),
                sizeof(payload)});
      }
    } else {
      int v = 0;
      c.recv(0, 7, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      std::printf("rank %d received %d\n", c.rank(), v);
    }

    // A collective: everyone contributes rank+1; all see the sum.
    std::vector<double> buf{static_cast<double>(c.rank() + 1)};
    c.allreduce(buf, polaris::coll::ReduceOp::kSum);
    if (c.rank() == 0) {
      std::printf("allreduce sum over %d ranks = %g\n", c.size(), buf[0]);
    }
  });
}

void simulated_cluster_demo() {
  std::printf("\n== simulated 64-node InfiniBand cluster ==\n");
  polaris::simrt::SimWorld world(64,
                                 polaris::fabric::fabrics::infiniband_4x());
  world.launch([](polaris::simrt::SimComm& c) -> polaris::des::Task<void> {
    // Each rank computes for 1 ms of simulated time, then joins a barrier
    // and an 8 KiB allreduce.
    co_await c.sleep(1e-3);
    co_await c.barrier();
    co_await c.allreduce(8 * 1024);
    if (c.rank() == 0) {
      std::printf("rank 0 finished at t = %.3f ms simulated\n",
                  c.now() * 1e3);
    }
  });
  const double elapsed = world.run();
  std::printf("whole program: %.3f ms simulated, %llu messages on the wire\n",
              elapsed * 1e3,
              static_cast<unsigned long long>(world.network().stats().messages));
}

}  // namespace

int main() {
  real_runtime_demo();
  simulated_cluster_demo();
  return 0;
}
