// Traces a 3-D halo exchange on a simulated InfiniBand fat tree and writes
// a Chrome trace (chrome://tracing or ui.perfetto.dev) plus a critical-path
// report.
//
//   ./trace_halo            -> halo_trace.json
//
// The trace has one timeline per rank (protocol-phase spans inside each
// send/recv) and one per fabric link (busy intervals), so the viewer shows
// exactly how computation, protocol handshakes and wire time interleave.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/obs/analysis.hpp"
#include "polaris/obs/clock.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/workload/apps.hpp"

int main() {
  using namespace polaris;

  constexpr std::size_t kRanks = 27;  // 3 x 3 x 3 process grid
  workload::Halo3DConfig cfg;
  cfg.n = 48;
  cfg.iterations = 8;

  simrt::SimWorld world(
      kRanks, fabric::fabrics::infiniband_4x(),
      std::make_unique<fabric::FatTree>(fabric::FatTree::radix_for(kRanks)));

  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  obs::MetricsRegistry metrics;
  world.attach_tracer(tracer);
  world.attach_metrics(metrics);

  workload::AppResult res;
  world.launch(workload::make_halo3d(cfg, kRanks, &res));
  const double makespan = world.run();

  {
    std::ofstream out("halo_trace.json");
    tracer.write_json(out);
  }
  std::printf("wrote halo_trace.json (%zu events on %zu tracks)\n\n",
              tracer.event_count(), tracer.track_count());

  const obs::TraceAnalysis analysis(tracer);
  const obs::CriticalPath path = analysis.critical_path("ranks");
  obs::TraceAnalysis::report(std::cout, path);

  std::printf("\nsimulated makespan %.6f s, critical path %.6f s (%.1f%%)\n",
              makespan, path.length_s, 100.0 * path.coverage);

  std::printf("\nmetrics:\n");
  metrics.dump(std::cout);
  return 0;
}
