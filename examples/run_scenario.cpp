// Runs a chaos scenario and prints its machine-readable verdict.
//
//   run_scenario                      # list built-in scenarios
//   run_scenario rolling-upgrade-drain
//   run_scenario path/to/spec.json    # any file with a '/' or '.json'
//   run_scenario crash-mid-ring trace.json   # also dump the obs trace
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "polaris/scenario/library.hpp"
#include "polaris/scenario/scenario.hpp"

namespace {

bool looks_like_path(const std::string& arg) {
  return arg.find('/') != std::string::npos ||
         (arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace polaris;

  if (argc < 2) {
    std::printf("usage: %s <scenario-name | spec.json> [trace-out.json]\n",
                argv[0]);
    std::printf("built-in scenarios:\n");
    for (const std::string& name : scenario::library_names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 2;
  }

  const std::string arg = argv[1];
  std::string spec;
  if (looks_like_path(arg)) {
    std::ifstream in(arg);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", arg.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    spec = buf.str();
  } else {
    spec = std::string(scenario::library_spec(arg));
  }

  scenario::Runner runner = scenario::Runner::from_text(spec);
  const scenario::Verdict v = runner.run();
  std::printf("%s\n", v.to_json().c_str());

  if (argc > 2) {
    std::ofstream out(argv[2]);
    runner.tracer().write_json(out);
    std::fprintf(stderr, "trace written to %s\n", argv[2]);
  }
  return v.passed ? 0 : 1;
}
