// F9 — The REAL user-level messaging runtime, measured with
// google-benchmark: small-message rate and latency through the lock-free
// shared-memory transport, eager vs rendezvous bandwidth, and collective
// latency over OS threads.  This is the laptop-scale "intra-node NIC" half
// of the reproduction (see DESIGN.md).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "polaris/rt/runtime.hpp"
#include "polaris/rt/spsc_ring.hpp"

namespace {

using polaris::rt::Communicator;
using polaris::rt::ShmOptions;
using polaris::rt::ShmWorld;

// -- raw ring ---------------------------------------------------------------

void BM_SpscRingPushPop(benchmark::State& state) {
  polaris::rt::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v);
    std::uint64_t out = 0;
    ring.try_pop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);  // single-threaded: CPU time is fine

// -- ping-pong latency by size -----------------------------------------------

void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  ShmWorld world(2);
  std::vector<std::byte> buf0(bytes), buf1(bytes);
  for (auto _ : state) {
    world.run([&](Communicator& c) {
      constexpr int kReps = 64;
      if (c.rank() == 0) {
        for (int i = 0; i < kReps; ++i) {
          c.send(1, 0, buf0);
          c.recv(1, 0, buf0);
        }
      } else {
        for (int i = 0; i < kReps; ++i) {
          c.recv(0, 0, buf1);
          c.send(0, 0, buf1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 128);  // messages
  state.SetBytesProcessed(state.iterations() * 128 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)
    ->Arg(8)
    ->Arg(512)
    ->Arg(8 * 1024)
    ->Arg(256 * 1024)
    ->UseRealTime();  // ranks are threads: wall time is the honest rate

// -- one-way message rate ------------------------------------------------------

void BM_MessageRate(benchmark::State& state) {
  ShmWorld world(2);
  for (auto _ : state) {
    world.run([&](Communicator& c) {
      constexpr int kMsgs = 2048;
      int payload = 7;
      std::byte buf[sizeof(int)];
      if (c.rank() == 0) {
        for (int i = 0; i < kMsgs; ++i) {
          c.send(1, 0,
                 {reinterpret_cast<const std::byte*>(&payload),
                  sizeof(payload)});
        }
      } else {
        for (int i = 0; i < kMsgs; ++i) c.recv(0, 0, buf);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_MessageRate)->UseRealTime();

// -- eager vs rendezvous bandwidth ----------------------------------------------

void BM_LargeTransfer(benchmark::State& state) {
  const bool rendezvous = state.range(0) != 0;
  const std::size_t bytes = 4 << 20;
  ShmOptions opts;
  opts.eager_threshold = rendezvous ? 1024 : (8 << 20);
  ShmWorld world(2, opts);
  std::vector<std::byte> src(bytes), dst(bytes);
  for (auto _ : state) {
    world.run([&](Communicator& c) {
      if (c.rank() == 0) {
        c.send(1, 0, src);
      } else {
        c.recv(0, 0, dst);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(rendezvous ? "rendezvous(zero-copy)" : "eager(one-copy)");
}
BENCHMARK(BM_LargeTransfer)->Arg(0)->Arg(1)->UseRealTime();

// -- collectives over threads -----------------------------------------------------

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  ShmWorld world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& c) {
      std::vector<double> buf(count, 1.0);
      for (int i = 0; i < 8; ++i) {
        c.allreduce(buf, polaris::coll::ReduceOp::kSum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Allreduce)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->UseRealTime();

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  ShmWorld world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& c) {
      for (int i = 0; i < 16; ++i) c.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
