// T1 — The commodity cluster cost table: $/Gflops, W/Gflops, racks and
// node counts by year and node architecture for a fixed $1M budget (the
// talk's "cost curves" rendered as the table a procurement would read).
#include <iostream>

#include "polaris/hw/cluster.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;
  hw::ClusterDesigner designer;
  const double budget = 1e6;

  support::Table t("T1: $1M commodity cluster by year and architecture");
  t.header({"year", "arch", "nodes", "peak", "$/Gflops", "W/Gflops",
            "racks", "GiB total", "Gflops/rack"});
  for (double year : {2002.0, 2004.0, 2006.0, 2008.0, 2010.0}) {
    for (hw::NodeArch arch : hw::all_node_archs()) {
      const auto c = designer.fixed_budget(arch, year, budget);
      const double gflops = c.peak_flops() / 1e9;
      t.add(static_cast<int>(year), hw::to_string(arch),
            static_cast<unsigned long long>(c.node_count),
            support::format_flops(c.peak_flops()),
            support::Table::to_cell(c.cost_usd() / gflops),
            support::Table::to_cell(c.power_w() / gflops),
            support::Table::to_cell(c.racks()),
            support::Table::to_cell(c.memory_bytes() / double(1u << 30)),
            support::Table::to_cell(c.gflops_per_rack()));
    }
  }
  t.print(std::cout);

  std::cout << "\nShape: $/Gflops falls ~40x over the decade for "
               "conventional nodes and\nfurther for CMP; blades trade a "
               "higher $/Gflops for ~3x density and the\nbest W/Gflops; "
               "PIM's $/peak-Gflops looks poor — its value shows in the\n"
               "memory-bound columns of F5, not here.\n";
  return 0;
}
