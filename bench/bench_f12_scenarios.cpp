// F12: chaos-scenario regression campaign.
//
// Runs every built-in scenario from polaris::scenario's library — the
// behavior-tree chaos campaigns over serve, cluster+rm, simrt and pdes —
// and reports each verdict plus the determinism fingerprint.  The table is
// the operational complement to the fault microbenches (D4/F8): not "how
// fast is the detector" but "does the whole machine survive the drill".
//
// Writes BENCH_SCENARIO.json with one `<name>.passed` row per scenario
// (1 = verdict passed), plus tick/event counts, so CI fails the build the
// moment any campaign regresses and successive PRs can diff the hashes.
#include <cstdio>
#include <string>

#include "polaris/scenario/library.hpp"
#include "polaris/scenario/scenario.hpp"
#include "report.hpp"

int main() {
  using namespace polaris;

  bench::Report report("bench_f12_scenarios",
                       "chaos-scenario regression campaign verdicts");

  std::printf("F12: chaos-scenario campaigns\n");
  std::printf("%-28s %-8s %7s %9s %7s  %s\n", "scenario", "verdict", "ticks",
              "sim_s", "events", "trace_hash");

  bool all_passed = true;
  for (const std::string& name : scenario::library_names()) {
    const scenario::Verdict v =
        scenario::run_scenario(scenario::library_spec(name));
    all_passed = all_passed && v.passed;

    std::printf("%-28s %-8s %7llu %9.4f %7llu  %016llx\n", name.c_str(),
                v.passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(v.ticks), v.end_time_s,
                static_cast<unsigned long long>(v.trace_events),
                static_cast<unsigned long long>(v.trace_hash));

    report.add(name + ".passed", v.passed ? 1.0 : 0.0, "bool");
    report.add(name + ".ticks", static_cast<double>(v.ticks), "ticks");
    report.add(name + ".trace_events", static_cast<double>(v.trace_events),
               "events");
    report.add(name + ".end_time_s", v.end_time_s, "s");
  }
  report.add("all_passed", all_passed ? 1.0 : 0.0, "bool");
  report.note("scenarios", std::to_string(scenario::library_names().size()));

  if (!report.write_file("BENCH_SCENARIO.json")) {
    std::fprintf(stderr, "could not write BENCH_SCENARIO.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_SCENARIO.json\n");
  return all_passed ? 0 : 1;
}
