// Machine-readable benchmark reports.
//
// Every perf-sensitive bench writes a BENCH_*.json next to its stdout
// tables so successive PRs have a numeric trajectory to compare against
// (and CI can smoke-check that the file parses).  The schema is flat on
// purpose: a tool name, free-form string notes, and a list of named
// (value, unit) measurements — nothing a `jq '.results[]'` can't read.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace polaris::bench {

class Report {
 public:
  Report(std::string tool, std::string description)
      : tool_(std::move(tool)), description_(std::move(description)) {}

  /// Appends one measurement.  Names are dotted paths
  /// ("engine.schedule_fire.events_per_sec"); units are plain strings
  /// ("events/s", "x", "s").
  void add(std::string name, double value, std::string unit) {
    results_.push_back({std::move(name), value, std::move(unit)});
  }

  /// Attaches free-form context (thread counts, budget, workload shape).
  void note(std::string key, std::string value) {
    notes_.emplace_back(std::move(key), std::move(value));
  }

  void write(std::ostream& os) const;

  /// Writes the JSON file; returns false when the file can't be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Measurement {
    std::string name;
    double value;
    std::string unit;
  };

  std::string tool_;
  std::string description_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<Measurement> results_;
};

}  // namespace polaris::bench
