// F2 — Fabric latency/bandwidth: ping-pong sweep across the commodity
// interconnects of 2002 (the "advances in networking including Infiniband
// and optical switching" figure).
//
// For each fabric: half round trip and delivered bandwidth per message
// size, simulated over a 2-node fabric, plus the small-message and
// large-message headline numbers.
//
// Each fabric is an independent simulation, so the sweep fans out across a
// SweepRunner thread pool (POLARIS_SWEEP_THREADS=1 forces serial); output
// is byte-identical at any thread count.
#include <iostream>

#include "polaris/des/sweep.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"

int main() {
  using namespace polaris;

  workload::PingPongConfig cfg;
  cfg.sizes = {1,     8,      64,      512,     4096,
               32768, 262144, 1048576, 4194304, 16777216};
  cfg.repetitions = 3;

  support::Table lat("F2a: one-way latency by message size (half RTT)");
  std::vector<std::string> header{"bytes"};
  const std::vector<fabric::FabricParams> sweep = fabric::fabrics::all();
  for (const auto& params : sweep) header.push_back(params.name);
  des::SweepRunner runner;
  const std::vector<workload::PingPongResult> results = runner.map(
      sweep, [&cfg](const fabric::FabricParams& params, std::size_t) {
        workload::PingPongResult res;
        simrt::SimWorld world(2, params);
        world.launch(workload::make_pingpong(cfg, &res));
        world.run();
        return res;
      });
  lat.header(header);
  for (std::size_t i = 0; i < cfg.sizes.size(); ++i) {
    std::vector<std::string> row{support::format_bytes(cfg.sizes[i])};
    for (const auto& r : results) {
      row.push_back(support::format_time(r.half_rtt[i]));
    }
    lat.row(row);
  }
  lat.print(std::cout);

  std::cout << "\n";
  support::Table bw("F2b: delivered bandwidth by message size");
  bw.header(header);
  for (std::size_t i = 0; i < cfg.sizes.size(); ++i) {
    std::vector<std::string> row{support::format_bytes(cfg.sizes[i])};
    for (const auto& r : results) {
      row.push_back(support::format_rate(
          static_cast<double>(cfg.sizes[i]) / r.half_rtt[i]));
    }
    bw.row(row);
  }
  bw.print(std::cout);

  std::cout << "\n";
  support::Table head("F2c: headline numbers");
  head.header({"fabric", "8B latency", "peak bandwidth",
               "n1/2 (bytes to half peak)"});
  const auto fabrics = fabric::fabrics::all();
  for (std::size_t f = 0; f < fabrics.size(); ++f) {
    const auto& r = results[f];
    const double peak_bw =
        static_cast<double>(cfg.sizes.back()) / r.half_rtt.back();
    // First size achieving half of peak bandwidth.
    std::uint64_t n_half = cfg.sizes.back();
    for (std::size_t i = 0; i < cfg.sizes.size(); ++i) {
      if (static_cast<double>(cfg.sizes[i]) / r.half_rtt[i] >=
          0.5 * peak_bw) {
        n_half = cfg.sizes[i];
        break;
      }
    }
    head.add(fabrics[f].name, support::format_time(r.half_rtt[1]),
             support::format_rate(peak_bw), support::format_bytes(n_half));
  }
  head.print(std::cout);

  std::cout << "\nShape to check against the talk: user-level fabrics "
               "(myrinet/qsnet/infiniband)\nbeat kernel Ethernet by ~10x on "
               "small-message latency; InfiniBand wins\nlarge-message "
               "bandwidth; the optical circuit switch only wins once its\n"
               "setup cost is amortized (warm circuits here).\n";
  return 0;
}
