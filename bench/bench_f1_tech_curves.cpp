// F1 — Device-technology projections, 2002 -> 2010.
//
// Regenerates the talk's promised "performance, capacity, power, size, and
// cost curves of future commodity clusters": per-node technology points,
// then two cluster views (fixed $1M budget, fixed 1024 nodes), ending with
// the trans-Petaflops horizon question.
#include <iostream>

#include "polaris/hw/cluster.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;
  hw::TechnologyModel tech;

  support::Table node_t("F1a: commodity node technology point by year");
  node_t.header({"year", "peak/node", "DRAM/node", "mem BW", "disk", "cost",
                 "power", "NIC BW", "NIC lat", "B/flop"});
  for (double y = 2002.0; y <= 2010.0; y += 1.0) {
    const auto p = tech.at(y);
    node_t.add(static_cast<int>(y), support::format_flops(p.flops_per_node),
               support::format_bytes(
                   static_cast<std::uint64_t>(p.mem_bytes_per_node)),
               support::format_rate(p.mem_bw_per_node),
               support::format_bytes(
                   static_cast<std::uint64_t>(p.disk_bytes_per_node)),
               support::format_dollars(p.node_cost_usd),
               support::format_watts(p.node_power_w),
               support::format_rate(p.nic_bw_bytes),
               support::format_time(p.nic_latency_s),
               support::Table::to_cell(tech.bytes_per_flop(y)));
  }
  node_t.print(std::cout);

  hw::ClusterDesigner designer;
  std::cout << "\n";
  support::Table budget_t("F1b: what $1M buys (conventional nodes)");
  budget_t.header({"year", "nodes", "peak", "memory", "power", "racks",
                   "floor m^2"});
  for (double y = 2002.0; y <= 2010.0; y += 2.0) {
    const auto c =
        designer.fixed_budget(hw::NodeArch::kConventional, y, 1e6);
    budget_t.add(static_cast<int>(y),
                 static_cast<unsigned long long>(c.node_count),
                 support::format_flops(c.peak_flops()),
                 support::format_bytes(
                     static_cast<std::uint64_t>(c.memory_bytes())),
                 support::format_watts(c.power_w()),
                 support::Table::to_cell(c.racks()),
                 support::Table::to_cell(c.floor_area_m2()));
  }
  budget_t.print(std::cout);

  std::cout << "\n";
  support::Table size_t_("F1c: a fixed 1024-node machine through time");
  size_t_.header({"year", "peak", "power", "Mflops/W", "cost"});
  for (double y = 2002.0; y <= 2010.0; y += 2.0) {
    const auto c =
        designer.fixed_size(hw::NodeArch::kConventional, y, 1024);
    size_t_.add(static_cast<int>(y), support::format_flops(c.peak_flops()),
                support::format_watts(c.power_w()),
                support::Table::to_cell(c.mflops_per_watt()),
                support::format_dollars(c.cost_usd()));
  }
  size_t_.print(std::cout);

  std::cout << "\nF1d: year a $1M cluster reaches ...  (conventional nodes)\n";
  for (double target : {1e12, 1e13, 1e14, 1e15}) {
    const double y = tech.year_reaching(target, 1e6);
    std::cout << "  " << polaris::support::format_flops(target) << ": "
              << (y > 2015.0 ? std::string("beyond 2015")
                             : polaris::support::Table::to_cell(y))
              << "\n";
  }
  std::cout << "(The trans-Petaflops regime needs the F5 node-architecture "
               "revolutions, not Moore alone.)\n";
  return 0;
}
