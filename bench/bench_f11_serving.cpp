// F11: datacenter serving tier — throughput vs p99 at millions of req/s.
//
// The cluster that wins the paper's cost argument also has to win the
// serving argument: a commodity fat tree carrying open-loop request
// traffic lives or dies by its latency tail.  Three chapters:
//
//   1. Load-balancing policy curves (crossbar, 16 shards): offered load
//      sweep per policy (random, round-robin, JSQ, power-of-two-choices),
//      recording throughput and p99/p999.  Near saturation po2c/JSQ must
//      cut p99 by >= 30% vs random — the classic result, reproduced on
//      the packet-level fabric rather than an M/M/k abstraction.  The
//      grid runs under des::SweepRunner: byte-identical output at any
//      worker count.
//   2. Adaptive vs oblivious routing under incast (fat-tree k=4, plus an
//      informational 2-D torus row): every shard sits on a node with the
//      same dst-mod-uplink residue, so deterministic routing piles all
//      request traffic onto ONE edge->agg uplink per pod while its twin
//      idles.  Adaptive (least-occupied equal-cost path) spreads the
//      load and must improve p99 at the same offered rate.
//   3. Shard failure: kill one shard mid-run (fault::Injector), fail
//      over via the balancer, and report the p999 excursion and recovery
//      from the time-bucketed latency timeline.
//
// Writes BENCH_SERVE.json (bench::Report) for CI trend checks.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "polaris/des/sweep.hpp"
#include "polaris/fabric/params.hpp"
#include "polaris/serve/serve.hpp"
#include "report.hpp"

namespace {

using namespace polaris;

constexpr std::uint64_t kSeed = 0xF11F11ULL;

double bench_budget_ms() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }
  return budget_ms;
}

// ------------------------------------------------------------- chapter 1

struct LbPoint {
  serve::LbPolicy lb{};
  double rho = 0.0;
  serve::ServeResult r;
};

constexpr serve::LbPolicy kPolicies[] = {
    serve::LbPolicy::kRandom, serve::LbPolicy::kRoundRobin,
    serve::LbPolicy::kJsq, serve::LbPolicy::kPo2c};
constexpr double kRhos[] = {0.5, 0.7, 0.9};

std::vector<LbPoint> run_lb_grid(double duration_s, double warmup_s,
                                 bench::Report& report) {
  constexpr std::size_t kFrontends = 8;
  constexpr std::size_t kShards = 16;
  constexpr double kServiceMean = 10e-6;  // 16 shards -> 1.6M req/s capacity
  const double capacity = static_cast<double>(kShards) / kServiceMean;

  const std::size_t n_pol = std::size(kPolicies);
  const std::size_t n_rho = std::size(kRhos);
  des::SweepRunner runner;
  std::vector<LbPoint> points =
      runner.run(n_pol * n_rho, [&](std::size_t i) {
        LbPoint p;
        p.lb = kPolicies[i / n_rho];
        p.rho = kRhos[i % n_rho];
        serve::ServeConfig cfg;
        cfg.frontends = kFrontends;
        cfg.shards = kShards;
        cfg.service_mean_s = kServiceMean;
        cfg.request_bytes = 128;
        cfg.response_bytes = 128;
        cfg.arrival = support::ArrivalSpec::poisson(
            p.rho * capacity / static_cast<double>(kFrontends));
        cfg.lb = p.lb;
        cfg.fabric = fabric::fabrics::myrinet2000();
        cfg.duration_s = duration_s;
        cfg.warmup_s = warmup_s;
        cfg.seed = des::sweep_seed(kSeed, i);
        serve::ServeSim sim(std::move(cfg));
        p.r = sim.run();
        return p;
      });

  std::printf("-- F11.1: LB policy curves (crossbar, %zu shards, "
              "capacity %.2fM req/s) --\n",
              kShards, capacity * 1e-6);
  std::printf("%-12s %5s %12s %10s %10s %10s\n", "policy", "rho",
              "tput (req/s)", "p50 (us)", "p99 (us)", "p999 (us)");
  for (const LbPoint& p : points) {
    std::printf("%-12s %5.2f %12.0f %10.1f %10.1f %10.1f\n",
                serve::to_string(p.lb), p.rho, p.r.throughput_rps,
                p.r.p50_us(), p.r.p99_us(), p.r.p999_us());
    const std::string base = std::string("lb.") + serve::to_string(p.lb) +
                             ".rho" +
                             std::to_string(static_cast<int>(p.rho * 100));
    report.add(base + ".throughput_rps", p.r.throughput_rps, "req/s");
    report.add(base + ".p99_us", p.r.p99_us(), "us");
    report.add(base + ".p999_us", p.r.p999_us(), "us");
  }
  return points;
}

// ------------------------------------------------------------- chapter 2

serve::ServeResult run_fattree(fabric::RoutingMode mode, double duration_s,
                               double warmup_s, std::uint64_t* rerouted) {
  // k=4 fat tree, 16 hosts.  Front-ends fill pod 0; every shard node id is
  // EVEN, so the oblivious uplink pick (dst % 2) sends every cross-pod
  // request through aggregation switch 0 — one hot uplink per edge switch,
  // its twin idle.  1 KiB requests at ~85% of one uplink's bandwidth make
  // that queue the dominant latency term.
  constexpr std::uint64_t kReqBytes = 1024;
  serve::ServeConfig cfg;
  cfg.frontends = 4;
  cfg.shards = 6;
  cfg.frontend_nodes = {0, 1, 2, 3};
  cfg.shard_nodes = {4, 6, 8, 10, 12, 14};
  cfg.service_mean_s = 5e-6;
  cfg.request_bytes = kReqBytes;
  cfg.response_bytes = 128;
  cfg.fabric = fabric::fabrics::myrinet2000();
  // Two front-ends share each edge switch; size the per-front-end rate so
  // the single oblivious uplink sees ~85% utilization.
  const double rate =
      0.85 * cfg.fabric.link_bw / (2.0 * static_cast<double>(kReqBytes));
  cfg.arrival = support::ArrivalSpec::poisson(rate);
  cfg.lb = serve::LbPolicy::kPo2c;
  cfg.routing = mode;
  cfg.duration_s = duration_s;
  cfg.warmup_s = warmup_s;
  cfg.seed = des::sweep_seed(kSeed, 100);  // same seed both modes
  serve::ServeSim sim(std::move(cfg), std::make_unique<fabric::FatTree>(4));
  serve::ServeResult r = sim.run();
  if (rerouted) *rerouted = r.net.adaptive_rerouted;
  return r;
}

serve::ServeResult run_torus(fabric::RoutingMode mode, double duration_s,
                             double warmup_s) {
  // 4x4 torus, front-ends across row 0, shards across row 2: x-then-y
  // oblivious routing funnels each front-end's traffic down one column;
  // minimal-adaptive may take y first when the column is queued.
  serve::ServeConfig cfg;
  cfg.frontends = 4;
  cfg.shards = 4;
  cfg.frontend_nodes = {0, 1, 2, 3};
  cfg.shard_nodes = {8, 9, 10, 11};
  cfg.service_mean_s = 5e-6;
  cfg.request_bytes = 1024;
  cfg.response_bytes = 128;
  cfg.fabric = fabric::fabrics::myrinet2000();
  cfg.arrival = support::ArrivalSpec::poisson(
      0.5 * cfg.fabric.link_bw / (4.0 * 1024.0));
  cfg.lb = serve::LbPolicy::kRandom;  // random spray -> crossing traffic
  cfg.routing = mode;
  cfg.duration_s = duration_s;
  cfg.warmup_s = warmup_s;
  cfg.seed = des::sweep_seed(kSeed, 200);
  serve::ServeSim sim(std::move(cfg),
                      std::make_unique<fabric::Torus2D>(4, 4));
  return sim.run();
}

// ------------------------------------------------------------- chapter 3

void run_fault_chapter(double duration_s, bench::Report& report) {
  constexpr double kBucket = 10e-3;
  constexpr double kCrashAt = 0.5;   // fractions of duration
  constexpr double kRepairFor = 0.25;
  serve::ServeConfig cfg;
  cfg.frontends = 8;
  cfg.shards = 16;
  cfg.service_mean_s = 10e-6;
  cfg.request_bytes = 128;
  cfg.response_bytes = 128;
  // 90% of the 16-shard capacity: losing one shard pushes the survivors
  // to 96% — the outage window visibly builds queue, then drains.
  cfg.arrival = support::ArrivalSpec::poisson(0.9 * 1.6e6 / 8.0);
  cfg.lb = serve::LbPolicy::kPo2c;
  cfg.fabric = fabric::fabrics::myrinet2000();
  cfg.duration_s = duration_s;
  cfg.warmup_s = 0.0;  // the timeline wants the whole run
  cfg.timeline_bucket_s = kBucket;
  cfg.seed = des::sweep_seed(kSeed, 300);
  serve::ServeSim sim(std::move(cfg));
  const double crash_at = kCrashAt * duration_s;
  sim.injector().schedule_node_crash(
      crash_at, sim.shard_node(0), kRepairFor * duration_s);
  serve::ServeResult r = sim.run();

  std::printf("\n-- F11.3: shard crash at t=%.0fms, repair +%.0fms "
              "(po2c, 16 shards) --\n",
              crash_at * 1e3, kRepairFor * duration_s * 1e3);
  std::printf("%-10s %10s %10s\n", "t (ms)", "p99 (us)", "p999 (us)");
  double steady = 0.0, excursion = 0.0, final_p999 = 0.0;
  for (std::size_t b = 0; b < r.timeline.size(); ++b) {
    const obs::LogHistogram& h = r.timeline[b];
    if (h.count() == 0) continue;
    const double p999 = h.quantile(0.999) * 1e-3;
    std::printf("%-10.0f %10.1f %10.1f\n", b * kBucket * 1e3,
                h.quantile(0.99) * 1e-3, p999);
    const double t0 = static_cast<double>(b) * kBucket;
    if (t0 + kBucket <= crash_at) steady = std::max(steady, p999);
    excursion = std::max(excursion, p999);
    final_p999 = p999;
  }
  std::printf("failovers=%llu dropped=%llu completed=%llu\n",
              static_cast<unsigned long long>(r.failovers),
              static_cast<unsigned long long>(r.dropped),
              static_cast<unsigned long long>(r.completed));
  report.add("fault.steady_p999_us", steady, "us");
  report.add("fault.excursion_p999_us", excursion, "us");
  report.add("fault.final_p999_us", final_p999, "us");
  report.add("fault.failovers", static_cast<double>(r.failovers), "count");
  report.add("fault.dropped", static_cast<double>(r.dropped), "count");
}

}  // namespace

int main() {
  const double budget_ms = bench_budget_ms();
  const bool full = budget_ms >= 1000.0;
  const double duration_s = full ? 0.1 : 0.04;
  const double warmup_s = full ? 0.02 : 0.01;

  bench::Report report("bench_f11_serving",
                       "serving tier: throughput vs p99 per LB policy, "
                       "routing mode, topology; shard-failure tail");
  report.note("budget_ms", std::to_string(budget_ms));
  report.note("duration_s", std::to_string(duration_s));

  const std::vector<LbPoint> lb = run_lb_grid(duration_s, warmup_s, report);

  // Chapter 2: identical offered load, oblivious vs adaptive.
  std::uint64_t rerouted = 0;
  const serve::ServeResult ft_obl =
      run_fattree(fabric::RoutingMode::kOblivious, duration_s, warmup_s,
                  nullptr);
  const serve::ServeResult ft_ada = run_fattree(
      fabric::RoutingMode::kAdaptive, duration_s, warmup_s, &rerouted);
  std::printf("\n-- F11.2: incast on fat-tree k=4 (all shards on one "
              "uplink residue) --\n");
  std::printf("%-10s %12s %10s %10s %10s\n", "routing", "tput (req/s)",
              "p50 (us)", "p99 (us)", "p999 (us)");
  std::printf("%-10s %12.0f %10.1f %10.1f %10.1f\n", "oblivious",
              ft_obl.throughput_rps, ft_obl.p50_us(), ft_obl.p99_us(),
              ft_obl.p999_us());
  std::printf("%-10s %12.0f %10.1f %10.1f %10.1f  (rerouted %llu)\n",
              "adaptive", ft_ada.throughput_rps, ft_ada.p50_us(),
              ft_ada.p99_us(), ft_ada.p999_us(),
              static_cast<unsigned long long>(rerouted));
  report.add("route.fattree.oblivious.p99_us", ft_obl.p99_us(), "us");
  report.add("route.fattree.adaptive.p99_us", ft_ada.p99_us(), "us");
  report.add("route.fattree.oblivious.throughput_rps",
             ft_obl.throughput_rps, "req/s");
  report.add("route.fattree.adaptive.throughput_rps", ft_ada.throughput_rps,
             "req/s");
  report.add("route.fattree.adaptive.rerouted",
             static_cast<double>(rerouted), "count");

  const serve::ServeResult t_obl =
      run_torus(fabric::RoutingMode::kOblivious, duration_s, warmup_s);
  const serve::ServeResult t_ada =
      run_torus(fabric::RoutingMode::kAdaptive, duration_s, warmup_s);
  std::printf("torus 4x4: oblivious p99 %.1f us, adaptive p99 %.1f us\n",
              t_obl.p99_us(), t_ada.p99_us());
  report.add("route.torus.oblivious.p99_us", t_obl.p99_us(), "us");
  report.add("route.torus.adaptive.p99_us", t_ada.p99_us(), "us");

  run_fault_chapter(full ? 0.1 : 0.05, report);

  // Inline sanity of the headline claims (CI re-checks from the JSON).
  double random_p99 = 0.0, po2c_p99 = 0.0, jsq_p99 = 0.0;
  for (const LbPoint& p : lb) {
    if (p.rho < 0.89) continue;
    if (p.lb == serve::LbPolicy::kRandom) random_p99 = p.r.p99_us();
    if (p.lb == serve::LbPolicy::kPo2c) po2c_p99 = p.r.p99_us();
    if (p.lb == serve::LbPolicy::kJsq) jsq_p99 = p.r.p99_us();
  }
  std::printf("\nheadlines: po2c/random p99 = %.2f, jsq/random = %.2f, "
              "adaptive/oblivious p99 = %.2f\n",
              po2c_p99 / random_p99, jsq_p99 / random_p99,
              ft_ada.p99_us() / ft_obl.p99_us());

  if (!report.write_file("BENCH_SERVE.json")) {
    std::fprintf(stderr, "failed to write BENCH_SERVE.json\n");
    return 1;
  }
  return 0;
}
