// D5: the live resource manager — decision cost, placement quality,
// crash determinism.
//
// Three experiments, emitted to BENCH_RM.json:
//
//   1. Decision cost: the same saturating multi-user trace at growing job
//      counts (100x apart) through the EASY-backfill manager.  Amortized
//      wall-clock per job must stay flat — the rate-limited backfill and
//      O(1) tier queues are what keep a 10^6-job backlog from going
//      quadratic.  `decision.flatness_ratio` is max/min us-per-job across
//      the sizes; CI asserts it stays under 2.
//   2. Placement quality: a 64-rank halo2d stencil on a 16x16 torus,
//      once on the contiguous 8x8 brick the BlockAllocator hands out and
//      once on a deliberately scattered stride placement.  Both runs use
//      the full simulated fabric, so the speedup is earned hop by hop.
//   3. Crash determinism: a seeded 120-job trace with six node crashes
//      sweeping the machine.  Every job must complete (requeue + eventual
//      replacement allocation), and two same-seed runs must produce
//      byte-identical accounting ledgers.
//
// Experiment 1 is wall-clock and scales its largest size down under
// POLARIS_BENCH_BUDGET_MS; 2 and 3 are pure simulation and always run in
// full.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/rm/manager.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"
#include "polaris/workload/job_mix.hpp"
#include "report.hpp"

namespace {

using namespace polaris;

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------- decision cost

struct DecisionPoint {
  std::size_t jobs = 0;
  double us_per_job = 0.0;
  double jobs_per_sec = 0.0;
  std::uint64_t decision_passes = 0;
  std::uint64_t backfill_cycles = 0;
  std::uint64_t backfilled = 0;
};

// A burst trace: arrivals far faster than the drain rate, so the queue
// depth grows to the order of the job count and every decision runs
// against a deep backlog.
DecisionPoint decision_cost(std::size_t jobs) {
  constexpr std::size_t kNodes = 1024;
  workload::MultiUserTraceConfig tc;
  tc.jobs = jobs;
  tc.users = 32;
  tc.accounts = 4;
  tc.mean_interarrival = 1.0;  // ~1000x faster than the drain rate
  tc.max_width_exp = 6;        // widths <= 64
  tc.min_runtime = 60.0;
  tc.max_runtime = 3600.0;
  const std::vector<rm::JobSpec> specs = workload::make_multi_user_trace(tc, 42);

  des::Engine engine;
  rm::RmConfig cfg;
  cfg.backfill = true;  // EASY, default rate limit
  rm::ResourceManager manager(engine, kNodes, cfg);
  for (const rm::JobSpec& s : specs) manager.submit(s);

  const double t0 = wall_seconds();
  engine.run();
  const double elapsed = wall_seconds() - t0;

  const rm::ResourceManager::Summary sum = manager.summary();
  if (sum.completed != jobs) {
    std::cerr << "decision_cost(" << jobs << "): only " << sum.completed
              << " jobs completed\n";
    std::exit(1);
  }
  DecisionPoint p;
  p.jobs = jobs;
  p.us_per_job = elapsed / static_cast<double>(jobs) * 1e6;
  p.jobs_per_sec = static_cast<double>(jobs) / elapsed;
  p.decision_passes = manager.decision_passes();
  p.backfill_cycles = manager.backfill_cycles();
  p.backfilled = sum.backfilled;
  return p;
}

// ---------------------------------------------------- placement quality

struct PlacementResult {
  double time_s = 0.0;
  double comm_fraction = 0.0;
  std::size_t fragments = 0;
};

PlacementResult run_halo(const std::vector<fabric::NodeId>& nodes,
                         std::size_t fragments) {
  constexpr std::size_t kRanks = 64;
  workload::Halo2DConfig cfg;
  cfg.iterations = 10;
  workload::AppResult res;
  simrt::SimWorld world(kRanks, fabric::fabrics::myrinet2000(),
                        std::make_unique<fabric::Torus2D>(16, 16));
  world.set_placement(nodes);
  world.launch(workload::make_halo2d(cfg, kRanks, &res));
  world.run();
  PlacementResult out;
  out.time_s = res.elapsed;
  out.comm_fraction = res.comm_fraction;
  out.fragments = fragments;
  return out;
}

// ------------------------------------------------------ crash determinism

struct CrashResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;
  std::uint64_t requeues = 0;
  double wasted_node_seconds = 0.0;
};

CrashResult crashy_run(std::uint64_t seed) {
  des::Engine engine;
  fabric::Torus2D topo(4, 4);
  fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
  fault::Injector injector(engine, net);

  rm::RmConfig cfg;
  cfg.backfill = true;
  cfg.backfill_interval = 15.0;
  rm::ResourceManager manager(engine, topo, cfg);
  manager.attach_injector(injector);

  workload::MultiUserTraceConfig tc;
  tc.jobs = 120;
  tc.users = 4;
  tc.accounts = 2;
  tc.mean_interarrival = 200.0;
  tc.max_width_exp = 3;  // widths <= 8 on 16 nodes
  tc.min_runtime = 100.0;
  tc.max_runtime = 2000.0;
  for (const rm::JobSpec& s : workload::make_multi_user_trace(tc, seed)) {
    manager.submit(s);
  }
  for (int i = 0; i < 6; ++i) {
    injector.schedule_node_crash(500.0 + 2500.0 * i,
                                 static_cast<std::uint32_t>((i * 5) % 16),
                                 /*repair_after=*/250.0);
  }
  engine.run();

  CrashResult out;
  out.fingerprint = manager.accounting().fingerprint();
  const rm::AccountingStore::Totals t = manager.accounting().totals();
  out.jobs = t.jobs;
  out.completed = t.completed;
  out.requeues = manager.summary().requeues;
  out.wasted_node_seconds = t.wasted_node_seconds;
  return out;
}

}  // namespace

int main() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }

  bench::Report report("bench_d5_rm",
                       "resource manager: amortized decision cost, "
                       "topology-aware placement quality, crash-determinism");
  report.note("budget_ms", std::to_string(budget_ms));

  // --- 1. decision cost ------------------------------------------------
  // 100x between the smallest and largest size; a tight budget shrinks
  // the absolute sizes but keeps the spread, so the flatness ratio stays
  // meaningful.
  std::vector<std::size_t> sizes;
  if (budget_ms >= 1000.0) {
    sizes = {10'000, 100'000, 1'000'000};
  } else {
    sizes = {5'000, 50'000, 500'000};
  }
  report.note("decision.sizes",
              std::to_string(sizes.front()) + ".." + std::to_string(sizes.back()));

  support::Table dtab("D5a: EASY-backfill decision cost vs queued jobs "
                      "(1024 nodes, saturating burst)");
  dtab.header({"jobs", "us/job", "jobs/s", "passes", "bf cycles", "backfilled"});
  double us_min = 0.0;
  double us_max = 0.0;
  for (std::size_t n : sizes) {
    const DecisionPoint p = decision_cost(n);
    dtab.row({std::to_string(p.jobs), support::Table::to_cell(p.us_per_job),
              support::Table::to_cell(p.jobs_per_sec), std::to_string(p.decision_passes),
              std::to_string(p.backfill_cycles), std::to_string(p.backfilled)});
    const std::string key = "decision.n_" + std::to_string(n);
    report.add(key + ".us_per_job", p.us_per_job, "us");
    report.add(key + ".jobs_per_sec", p.jobs_per_sec, "jobs/s");
    report.add(key + ".backfill_cycles",
               static_cast<double>(p.backfill_cycles), "cycles");
    if (us_min == 0.0 || p.us_per_job < us_min) us_min = p.us_per_job;
    if (p.us_per_job > us_max) us_max = p.us_per_job;
  }
  dtab.print(std::cout);
  const double flatness = us_max / us_min;
  report.add("decision.flatness_ratio", flatness, "x");
  std::cout << "Decision-cost flatness over a 100x size spread: "
            << support::Table::to_cell(flatness) << "x (must stay < 2)\n";

  // --- 2. placement quality -------------------------------------------
  // The allocator's first 64-wide grant on an empty 16x16 torus is the
  // aligned 8x8 brick at the origin; the scatter placement strides the
  // same 64 ranks across the whole machine.
  fabric::Torus2D topo(16, 16);
  rm::BlockAllocator alloc(topo);
  rm::Allocation brick;
  if (!alloc.allocate(64, /*owner=*/1, brick) || brick.fragments() != 1) {
    std::cerr << "allocator refused a contiguous 64-block on an empty torus\n";
    return 1;
  }
  std::vector<fabric::NodeId> scattered;
  for (std::uint32_t i = 0; i < 64; ++i) {
    scattered.push_back(static_cast<fabric::NodeId>((i * 83) % 256));
  }
  const PlacementResult contiguous = run_halo(brick.nodes, brick.fragments());
  const PlacementResult scatter = run_halo(scattered, 64);
  const double speedup = scatter.time_s / contiguous.time_s;

  support::Table ptab("D5b: halo2d (64 ranks, 10 iter) on a 16x16 torus, "
                      "Myrinet-2000: allocator brick vs scatter");
  ptab.header({"placement", "time", "comm%"});
  ptab.row({"8x8 brick", support::format_time(contiguous.time_s),
            support::Table::to_cell(contiguous.comm_fraction * 100.0)});
  ptab.row({"stride-83 scatter", support::format_time(scatter.time_s),
            support::Table::to_cell(scatter.comm_fraction * 100.0)});
  ptab.print(std::cout);
  std::cout << "Contiguous-placement speedup: " << support::Table::to_cell(speedup)
            << "x\n";
  report.add("placement.contiguous_time", contiguous.time_s, "s");
  report.add("placement.scattered_time", scatter.time_s, "s");
  report.add("placement.speedup", speedup, "x");
  report.add("placement.contiguous_fragments",
             static_cast<double>(contiguous.fragments), "runs");

  // --- 3. crash determinism -------------------------------------------
  const CrashResult a = crashy_run(2002);
  const CrashResult b = crashy_run(2002);
  const bool deterministic =
      a.fingerprint == b.fingerprint && a.requeues == b.requeues;
  std::cout << "\nD5c: 120-job trace, 6 node crashes: " << a.completed << "/"
            << a.jobs << " completed, " << a.requeues << " requeues, "
            << support::Table::to_cell(a.wasted_node_seconds)
            << " node-seconds wasted; same-seed ledgers "
            << (deterministic ? "identical" : "DIVERGED") << " ("
            << a.fingerprint << ")\n";
  report.add("faults.jobs", static_cast<double>(a.jobs), "jobs");
  report.add("faults.completed_fraction",
             static_cast<double>(a.completed) / static_cast<double>(a.jobs),
             "fraction");
  report.add("faults.requeues", static_cast<double>(a.requeues), "requeues");
  report.add("faults.wasted_node_seconds", a.wasted_node_seconds, "node-s");
  report.add("faults.ledger_deterministic", deterministic ? 1.0 : 0.0, "bool");
  report.note("faults.fingerprint", std::to_string(a.fingerprint));

  if (!report.write_file("BENCH_RM.json")) {
    std::cerr << "warning: could not write BENCH_RM.json\n";
  }
  std::cout << "\nWrote BENCH_RM.json.\n";
  return 0;
}
