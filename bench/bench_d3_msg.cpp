// D3 — messaging-core throughput: the bucketed tag matcher against the
// linear reference it replaced, and the pooled simrt in-flight path.
//
// Four sections:
//
//  1. Incast matching: one matcher holding 512 posted receives (64 sources
//     x 8 tags) takes randomized arrivals, each repost keeping the depth
//     constant.  The linear matcher scans ~depth/2 per arrival; the
//     bucketed matcher does one hash lookup.
//  2. Wildcard-heavy receive: 4096 unexpected messages (64 sources x 64
//     tags); posts cycle exact / any-source / any-tag / fully-wild shapes,
//     re-arriving each match to hold the depth.  The linear matcher scans
//     the unexpected queue per post; the bucketed one reads a
//     category-list head.
//  3. Eager steady state: 2-rank simrt ping-pong of eager messages,
//     absolute messages/s through the full protocol + fabric stack, with
//     the allocation-free claim checked by pool-capacity deltas between a
//     warmup run and the measured run.
//  4. CG-pattern churn: 16 ranks on a 4x4 torus, each round posting 4
//     irecvs + 4 isends and wait_all-ing them (the SpMV halo inner loop),
//     same steady-state-allocation check.
//
// Emits BENCH_MSG.json.  POLARIS_BENCH_BUDGET_MS shrinks workloads for CI
// smoke runs (default ~2000 ms per section).  Exits non-zero if the
// matcher speedup falls below 2x or the steady-state phases allocate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "polaris/msg/reference_matcher.hpp"
#include "polaris/msg/tag_matcher.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "report.hpp"

namespace {

using namespace polaris;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------- matcher harness

constexpr int kSources = 64;
constexpr int kTags = 8;
constexpr int kDepth = kSources * kTags;  // one posted recv per (src,tag)

/// Incast: randomized arrivals against a constant-depth posted queue;
/// every arrival matches and is immediately reposted.  Returns wall s.
template <class Matcher>
double run_incast(Matcher& m, const std::vector<std::uint16_t>& order) {
  for (int p = 0; p < kDepth; ++p) {
    m.post_recv(static_cast<msg::RecvId>(p), p % kSources, p / kSources);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::uint16_t p : order) {
    msg::Envelope<int> env;
    env.src = p % kSources;
    env.tag = p / kSources;
    env.bytes = 64;
    env.cookie = p;
    const auto id = m.arrive(std::move(env));
    if (!id) std::abort();  // every arrival must match
    m.post_recv(*id, p % kSources, p / kSources);
  }
  return seconds_since(t0);
}

/// Wildcard-heavy: constant-depth unexpected queue (64 sources x 64 tags);
/// posts cycle the four receive shapes and each match is re-arrived.
/// Returns wall s.
constexpr int kWildTags = 64;
constexpr int kWildDepth = kSources * kWildTags;

template <class Matcher>
double run_wildcard(Matcher& m, const std::vector<std::uint16_t>& order) {
  for (int p = 0; p < kWildDepth; ++p) {
    msg::Envelope<int> env;
    env.src = p % kSources;
    env.tag = p / kSources;
    env.bytes = 64;
    env.cookie = p;
    m.arrive(std::move(env));
  }
  msg::RecvId next_id = kWildDepth;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  for (const std::uint16_t p : order) {
    int src = p % kSources;
    int tag = p / kSources;
    switch (n++ % 4) {
      case 0: break;                           // exact
      case 1: src = msg::kAnySource; break;
      case 2: tag = msg::kAnyTag; break;
      default:
        src = msg::kAnySource;
        tag = msg::kAnyTag;
        break;
    }
    const auto got = m.post_recv(next_id++, src, tag);
    if (!got) std::abort();  // depth invariant: a match always exists
    msg::Envelope<int> env;
    env.src = got->src;
    env.tag = got->tag;
    env.bytes = 64;
    env.cookie = got->cookie;
    m.arrive(std::move(env));
  }
  return seconds_since(t0);
}

// --------------------------------------------------- steady-state counters

/// Sum of every slab/pool capacity and SBO-miss counter on the simrt hot
/// path: a zero delta across a phase means the phase allocated nothing.
std::uint64_t allocation_odometer(simrt::SimWorld& world) {
  std::uint64_t total = world.inflight_pool_capacity();
  const des::EngineStats es = world.engine().stats();
  total += es.pool_capacity + es.sbo_misses;
  for (std::size_t r = 0; r < world.ranks(); ++r) {
    total += world.comm(r).matcher_pool_capacity();
    total += world.comm(r).request_pool_capacity();
  }
  return total;
}

}  // namespace

int main() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }

  bench::Report report(
      "bench_d3_msg",
      "Messaging core: bucketed tag matching vs the linear reference, and "
      "the pooled allocation-free simrt in-flight path");
  report.note("budget_ms", std::to_string(budget_ms));

  // The linear matcher clears roughly 1M ops/s at depth 512, so budget*500
  // ops keeps its (slower) side inside the per-section budget.
  const auto ops = std::max<std::uint64_t>(
      100'000, static_cast<std::uint64_t>(budget_ms) * 500);
  std::vector<std::uint16_t> order(ops);
  std::mt19937_64 rng(2002);
  for (auto& p : order) p = static_cast<std::uint16_t>(rng() % kDepth);

  // -- 1. incast matching ---------------------------------------------------
  msg::ReferenceTagMatcher<int> inc_ref;
  const double inc_ref_s = run_incast(inc_ref, order);
  msg::TagMatcher<int> inc_fast;
  const double inc_fast_s = run_incast(inc_fast, order);
  const double inc_ref_rate = static_cast<double>(ops) / inc_ref_s;
  const double inc_fast_rate = static_cast<double>(ops) / inc_fast_s;
  const double inc_speedup = inc_fast_rate / inc_ref_rate;

  support::Table t1("D3a: incast matching, 512 posted recvs (64 src x 8 tag)");
  t1.header({"matcher", "arrivals/s", "speedup"});
  t1.add("linear", support::Table::to_cell(inc_ref_rate),
         support::Table::to_cell(1.0));
  t1.add("bucketed", support::Table::to_cell(inc_fast_rate),
         support::Table::to_cell(inc_speedup));
  t1.print(std::cout);
  report.note("matcher.ops", std::to_string(ops));
  report.add("incast.linear.ops_per_sec", inc_ref_rate, "ops/s");
  report.add("incast.bucketed.ops_per_sec", inc_fast_rate, "ops/s");
  report.add("incast.speedup", inc_speedup, "x");

  // -- 2. wildcard-heavy recv -----------------------------------------------
  std::vector<std::uint16_t> wc_order(ops);
  for (auto& p : wc_order) p = static_cast<std::uint16_t>(rng() % kWildDepth);
  msg::ReferenceTagMatcher<int> wc_ref;
  const double wc_ref_s = run_wildcard(wc_ref, wc_order);
  msg::TagMatcher<int> wc_fast;
  const double wc_fast_s = run_wildcard(wc_fast, wc_order);
  const double wc_ref_rate = static_cast<double>(ops) / wc_ref_s;
  const double wc_fast_rate = static_cast<double>(ops) / wc_fast_s;
  const double wc_speedup = wc_fast_rate / wc_ref_rate;

  std::cout << "\n";
  support::Table t2(
      "D3b: wildcard-heavy recv, 4096 unexpected (64 src x 64 tag), "
      "shapes cycled");
  t2.header({"matcher", "recvs/s", "speedup"});
  t2.add("linear", support::Table::to_cell(wc_ref_rate),
         support::Table::to_cell(1.0));
  t2.add("bucketed", support::Table::to_cell(wc_fast_rate),
         support::Table::to_cell(wc_speedup));
  t2.print(std::cout);
  report.add("wildcard.linear.ops_per_sec", wc_ref_rate, "ops/s");
  report.add("wildcard.bucketed.ops_per_sec", wc_fast_rate, "ops/s");
  report.add("wildcard.speedup", wc_speedup, "x");

  // -- 3. eager steady state ------------------------------------------------
  // Warm one run to fill every pool, snapshot the allocation odometer,
  // then measure: the measured run must not grow any slab.
  const auto eager_rounds = std::max<std::uint64_t>(
      20'000, static_cast<std::uint64_t>(budget_ms) * 100);
  simrt::SimWorld eg_world(2, fabric::fabrics::infiniband_4x());
  const auto eager_phase = [&](std::uint64_t rounds) {
    eg_world.launch([rounds](simrt::SimComm& c) -> des::Task<void> {
      for (std::uint64_t i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          co_await c.send(1, 0, 256);
        } else {
          co_await c.recv(0, 0);
        }
      }
    });
    eg_world.run();
  };
  eager_phase(eager_rounds / 10 + 64);  // warmup
  const std::uint64_t eg_before = allocation_odometer(eg_world);
  const auto eg_t0 = std::chrono::steady_clock::now();
  eager_phase(eager_rounds);
  const double eg_s = seconds_since(eg_t0);
  const std::uint64_t eg_allocs = allocation_odometer(eg_world) - eg_before;
  const double eg_rate = static_cast<double>(eager_rounds) / eg_s;

  std::cout << "\n";
  support::Table t3("D3c: eager steady state, 2 ranks, 256 B, infiniband");
  t3.header({"metric", "value"});
  t3.add("messages/s", support::Table::to_cell(eg_rate));
  t3.add("steady-state allocs", support::Table::to_cell(
                                    static_cast<double>(eg_allocs)));
  t3.print(std::cout);
  report.note("eager.rounds", std::to_string(eager_rounds));
  report.add("eager.msgs_per_sec", eg_rate, "msgs/s");
  report.add("eager.steady_state_allocs", static_cast<double>(eg_allocs),
             "count");

  // -- 4. CG-pattern irecv/wait_all churn ------------------------------------
  const auto cg_rounds = std::max<std::uint64_t>(
      500, static_cast<std::uint64_t>(budget_ms) * 3);
  constexpr int kGrid = 4;  // 4x4 torus, 4 neighbors per rank
  simrt::SimWorld cg_world(kGrid * kGrid, fabric::fabrics::myrinet2000());
  const auto cg_phase = [&](std::uint64_t rounds) {
    cg_world.launch([rounds](simrt::SimComm& c) -> des::Task<void> {
      const int x = c.rank() % kGrid;
      const int y = c.rank() / kGrid;
      const int nbr[4] = {
          y * kGrid + (x + 1) % kGrid, y * kGrid + (x + kGrid - 1) % kGrid,
          ((y + 1) % kGrid) * kGrid + x,
          ((y + kGrid - 1) % kGrid) * kGrid + x};
      std::vector<simrt::SimRequest> reqs;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        reqs.clear();
        for (const int n : nbr) reqs.push_back(c.irecv(n, 0));
        for (const int n : nbr) reqs.push_back(c.isend(n, 0, 2048));
        co_await c.wait_all(reqs);
      }
    });
    cg_world.run();
  };
  cg_phase(cg_rounds / 10 + 16);  // warmup
  const std::uint64_t cg_before = allocation_odometer(cg_world);
  const auto cg_t0 = std::chrono::steady_clock::now();
  cg_phase(cg_rounds);
  const double cg_s = seconds_since(cg_t0);
  const std::uint64_t cg_allocs = allocation_odometer(cg_world) - cg_before;
  const double cg_rate = static_cast<double>(cg_rounds) / cg_s;
  const double cg_msg_rate = cg_rate * kGrid * kGrid * 4;

  std::cout << "\n";
  support::Table t4("D3d: CG halo churn, 16 ranks, 4x4 torus, 2 KiB");
  t4.header({"metric", "value"});
  t4.add("rounds/s", support::Table::to_cell(cg_rate));
  t4.add("messages/s", support::Table::to_cell(cg_msg_rate));
  t4.add("steady-state allocs", support::Table::to_cell(
                                    static_cast<double>(cg_allocs)));
  t4.print(std::cout);
  report.note("cg.rounds", std::to_string(cg_rounds));
  report.add("cg.rounds_per_sec", cg_rate, "rounds/s");
  report.add("cg.msgs_per_sec", cg_msg_rate, "msgs/s");
  report.add("cg.steady_state_allocs", static_cast<double>(cg_allocs),
             "count");

  if (!report.write_file("BENCH_MSG.json")) {
    std::cerr << "warning: could not write BENCH_MSG.json\n";
  }
  std::cout << "\nWrote BENCH_MSG.json.\n";

  bool ok = true;
  if (inc_speedup < 2.0) {
    std::cerr << "ERROR: incast speedup " << inc_speedup << " < 2x\n";
    ok = false;
  }
  if (wc_speedup < 2.0) {
    std::cerr << "ERROR: wildcard speedup " << wc_speedup << " < 2x\n";
    ok = false;
  }
  if (eg_allocs != 0) {
    std::cerr << "ERROR: eager steady state allocated (" << eg_allocs
              << ")\n";
    ok = false;
  }
  if (cg_allocs != 0) {
    std::cerr << "ERROR: CG steady state allocated (" << cg_allocs << ")\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
