// F8 — Fault recovery as system scale explodes.
//
// System MTBF vs node count (exponential and infant-mortality Weibull),
// the no-checkpoint collapse, Daly-interval checkpointing efficiency vs
// scale (analytic + Monte-Carlo), and detector tuning.
#include <cmath>
#include <iostream>

#include "polaris/fault/checkpoint.hpp"
#include "polaris/fault/detector.hpp"
#include "polaris/fault/failure.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;
  const double node_mtbf = 5.0 * 365 * 86400.0;  // 5-year commodity node

  support::Table mtbf("F8a: system MTBF vs node count (node MTBF 5 y)");
  mtbf.header({"nodes", "exponential", "weibull k=0.7 (sampled)"});
  support::Random rng(99);
  for (std::size_t n : {10u, 100u, 1000u, 10000u, 100000u}) {
    const double exp_m = fault::system_mtbf_exponential(node_mtbf, n);
    const double weib_m = fault::system_mtbf_sampled(
        fault::FailureModel::weibull(node_mtbf, 0.7), n,
        n > 10000 ? 200 : 1000, rng);
    mtbf.add(static_cast<unsigned long long>(n),
             support::format_time(exp_m), support::format_time(weib_m));
  }
  mtbf.print(std::cout);

  std::cout << "\n";
  support::Table wall("F8b: 24 h of work vs machine scale "
                      "(ckpt 300 s, restart 120 s)");
  wall.header({"nodes", "system MTBF", "no-ckpt wall", "Daly interval",
               "Daly wall", "efficiency"});
  for (std::size_t n : {128u, 1024u, 4096u, 16384u, 65536u}) {
    const auto out =
        fault::wall_time_at_scale(86400.0, node_mtbf, n, 300.0, 120.0);
    fault::CheckpointConfig c;
    c.checkpoint_cost = 300.0;
    c.restart_cost = 120.0;
    c.system_mtbf = out.system_mtbf_s;
    wall.add(static_cast<unsigned long long>(n),
             support::format_time(out.system_mtbf_s),
             std::isinf(out.no_checkpoint_wall)
                 ? std::string("never")
                 : support::format_time(out.no_checkpoint_wall),
             support::format_time(out.daly_interval_s),
             support::format_time(out.daly_wall),
             support::Table::to_cell(fault::optimal_efficiency(c)));
  }
  wall.print(std::cout);

  std::cout << "\n";
  support::Table iv("F8c: checkpoint-interval sweep at 4096 nodes: analytic "
                    "vs Monte-Carlo efficiency");
  iv.header({"interval", "analytic", "simulated"});
  {
    fault::CheckpointConfig c;
    c.checkpoint_cost = 300.0;
    c.restart_cost = 120.0;
    c.system_mtbf = fault::system_mtbf_exponential(node_mtbf, 4096);
    const double tau = fault::daly_interval(c);
    for (double f : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double t = tau * f;
      iv.add(support::format_time(t),
             support::Table::to_cell(fault::analytic_efficiency(c, t)),
             support::Table::to_cell(
                 fault::simulate_efficiency(c, t, 3e7, 11)));
    }
  }
  iv.print(std::cout);

  std::cout << "\n";
  support::Table det("F8d: heartbeat detector tuning (1 s period, "
                     "lognormal jitter sigma 0.8)");
  det.header({"timeout", "false positives/hb", "detection latency"});
  for (double timeout : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const auto q =
        fault::evaluate_timeout_detector(1.0, 0.8, timeout, 200000, 5);
    det.add(support::format_time(timeout),
            support::Table::to_cell(q.false_positive_rate),
            support::format_time(q.detection_latency));
  }
  det.print(std::cout);

  std::cout << "\n";
  support::Table phi("F8e: phi-accrual detector (same heartbeat stream): "
                     "threshold sweep");
  phi.header({"phi threshold", "false positives/hb", "detection latency"});
  for (double threshold : {2.0, 4.0, 8.0, 12.0}) {
    const auto q = fault::evaluate_phi_detector(1.0, 0.8, threshold,
                                                100000, 5);
    phi.add(support::Table::to_cell(threshold),
            support::Table::to_cell(q.false_positive_rate),
            support::format_time(q.detection_latency));
  }
  phi.print(std::cout);

  std::cout << "\nShape: MTBF falls ~1/N (worse with infant mortality); "
               "running naked\nstops working around 10^3-10^4 nodes; Daly "
               "checkpointing holds efficiency\nhigh but visibly decays as "
               "scale explodes — the fault-recovery software\nresponsibility "
               "the talk predicts.  Monte-Carlo validates the analytic "
               "curve;\nthe phi-accrual detector adapts its effective "
               "timeout to observed jitter\ninstead of requiring manual "
               "tuning.\n";
  return 0;
}
