// F5 — Node architecture comparison: conventional vs blade vs SMP-on-chip
// vs processor-in-memory ("the revolutionary structures embodied by the
// nodes").
//
// Roofline sweep over arithmetic intensity, density/power per rack, and
// the per-architecture evolution of the figures of merit through the
// decade.
#include <iostream>

#include "polaris/hw/cluster.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;
  hw::NodeDesigner designer;

  support::Table rf("F5a: roofline attained Gflops by arithmetic intensity "
                    "(2002 nodes)");
  std::vector<std::string> header{"flop/byte"};
  for (auto a : hw::all_node_archs()) header.push_back(hw::to_string(a));
  rf.header(header);
  for (double ai : {0.05, 0.25, 1.0, 4.0, 16.0, 64.0}) {
    std::vector<std::string> row{support::Table::to_cell(ai)};
    for (auto a : hw::all_node_archs()) {
      const auto n = designer.design(a, 2002.0);
      row.push_back(support::Table::to_cell(n.attained_flops(ai) / 1e9));
    }
    rf.row(row);
  }
  rf.print(std::cout);

  std::cout << "\n";
  support::Table dm("F5b: 2002 node figures of merit");
  dm.header({"arch", "peak", "mem BW", "ridge (F/B)", "power", "cost",
             "nodes/rack", "Gflops/rack", "Mflops/W"});
  for (auto a : hw::all_node_archs()) {
    const auto n = designer.design(a, 2002.0);
    dm.add(hw::to_string(a), support::format_flops(n.peak_flops),
           support::format_rate(n.mem_bw),
           support::Table::to_cell(n.ridge_point()),
           support::format_watts(n.power_w),
           support::format_dollars(n.cost_usd),
           support::Table::to_cell(n.nodes_per_rack()),
           support::Table::to_cell(n.peak_flops * n.nodes_per_rack() / 1e9),
           support::Table::to_cell(n.flops_per_watt() / 1e6));
  }
  dm.print(std::cout);

  std::cout << "\n";
  support::Table ev("F5c: peak per node through the decade (Gflops)");
  ev.header(header);
  for (double y : {2002.0, 2004.0, 2006.0, 2008.0, 2010.0}) {
    std::vector<std::string> row{support::Table::to_cell(y)};
    for (auto a : hw::all_node_archs()) {
      row.push_back(support::Table::to_cell(
          designer.design(a, y).peak_flops / 1e9));
    }
    ev.row(row);
  }
  ev.print(std::cout);

  std::cout << "\n";
  support::Table mk("F5d: memory-bound kernel (0.1 F/B) time for 1 Tflop "
                    "of work, one node, by year");
  mk.header(header);
  for (double y : {2002.0, 2006.0, 2010.0}) {
    std::vector<std::string> row{support::Table::to_cell(y)};
    for (auto a : hw::all_node_archs()) {
      const auto n = designer.design(a, y);
      row.push_back(
          support::format_time(n.kernel_time(1e12, 1e12 / 0.1)));
    }
    mk.row(row);
  }
  mk.print(std::cout);

  std::cout << "\nShape: PIM dominates low-intensity (memory-bound) work;"
               "\nCMP pulls away on peak as cores-per-die compound; blades "
               "win density\nand flops/W at some peak cost per node.\n";
  return 0;
}
