// D4: live fault injection through the fast data path.
//
// Three experiments, all on the DES fabric (no wall-clock here — these are
// model-validation numbers, not perf numbers):
//
//   1. Detection latency: a heartbeat service over the real fabric watches
//      16 nodes; one crashes.  Measured suspicion lag for the timeout and
//      the phi-accrual detector, each isolated.
//   2. Retry overhead: an 8-rank ring exchange under link outages at
//      falling MTBF.  Slowdown vs the clean run, retries, drops.
//   3. Checkpoint efficiency: a simulated app checkpointing at Daly's
//      interval under injected node crashes.  Measured efficiency must
//      land within a few percent of the first-order analytic curve and of
//      the standalone Monte-Carlo (simulate_efficiency) — the DES app,
//      the closed form, and the sampler all describe the same machine.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "polaris/fault/checkpoint.hpp"
#include "polaris/fault/failure.hpp"
#include "polaris/fault/heartbeat.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "report.hpp"

namespace {

using namespace polaris;

// ------------------------------------------------------------ detection

struct DetectionResult {
  double timeout_latency = -1.0;
  double phi_latency = -1.0;
};

double detection_latency(double timeout, double phi_threshold) {
  des::Engine engine;
  fabric::Crossbar topo(16);
  fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
  fault::Injector injector(engine, net);
  fault::HeartbeatService::Config cfg;
  cfg.period = 0.1;
  cfg.timeout = timeout;
  cfg.phi_threshold = phi_threshold;
  cfg.horizon = 20.0;
  fault::HeartbeatService hb(engine, net, cfg);
  hb.start();
  injector.schedule_node_crash(/*at=*/3.0, /*node=*/5);
  engine.run();
  if (!hb.suspected(5)) return -1.0;
  return hb.suspected_at(5) - injector.downed_at(5);
}

DetectionResult run_detection() {
  DetectionResult r;
  // Isolate each detector by making the other one unreachable.
  r.timeout_latency = detection_latency(/*timeout=*/0.5,
                                        /*phi_threshold=*/1e9);
  r.phi_latency = detection_latency(/*timeout=*/1e9, /*phi_threshold=*/8.0);
  return r;
}

// --------------------------------------------------------- retry overhead

struct RingResult {
  double seconds = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
};

RingResult run_ring(double link_mtbf) {
  constexpr std::size_t kRanks = 8;
  constexpr int kIters = 200;
  constexpr std::uint64_t kBytes = 64 * 1024;
  simrt::SimWorld world(kRanks, fabric::fabrics::myrinet2000());
  fault::Injector injector(world.engine(), world.network());
  simrt::RetryPolicy policy;
  policy.max_retries = 8;
  policy.backoff = 0.02;
  policy.backoff_factor = 2.0;
  world.enable_faults(injector, policy);
  if (link_mtbf > 0.0) {
    const fault::FailureModel model =
        fault::FailureModel::exponential(link_mtbf);
    fault::FailureTimeline timeline(
        model, world.network().topology().link_count(), /*seed=*/2026);
    injector.load_link_timeline(timeline, /*horizon=*/60.0,
                                /*repair_after=*/0.05);
  }
  // App completion is measured inside the program: the injector's
  // scheduled outage/repair events run to the timeline horizon and would
  // otherwise inflate world.run()'s elapsed time.
  std::vector<double> done(kRanks, 0.0);
  world.launch([&done](simrt::SimComm& c) -> des::Task<void> {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < kIters; ++i) {
      simrt::SimRequest r = c.irecv(prev, i);
      co_await c.send(next, i, kBytes);
      co_await c.wait(r);
      co_await c.sleep(0.01);  // compute phase between exchanges
    }
    done[static_cast<std::size_t>(c.rank())] = c.now();
  });
  world.run();
  RingResult out;
  for (const double d : done) out.seconds = std::max(out.seconds, d);
  out.retries = world.msg_retries();
  out.drops = world.msg_drops();
  return out;
}

// ----------------------------------------------------- checkpoint efficiency

struct CheckpointResult {
  double measured = 0.0;
  double analytic = 0.0;
  double sampled = 0.0;
  double wall = 0.0;
  std::uint64_t crashes = 0;
};

CheckpointResult run_checkpoint() {
  constexpr std::size_t kRanks = 8;
  constexpr double kNodeMtbf = 8 * 3600.0;  // system MTBF = 3600 s
  constexpr double kDelta = 30.0;
  constexpr double kRestart = 60.0;
  constexpr double kWork = 180000.0;  // 50 h of useful work per rank

  fault::CheckpointConfig cc;
  cc.checkpoint_cost = kDelta;
  cc.restart_cost = kRestart;
  cc.system_mtbf = kNodeMtbf / static_cast<double>(kRanks);
  const double tau = fault::daly_interval(cc);

  simrt::SimWorld world(kRanks, fabric::fabrics::myrinet2000());
  fault::Injector injector(world.engine(), world.network());
  simrt::RetryPolicy policy;
  policy.max_retries = 8;
  policy.backoff = 5e-4;
  policy.backoff_factor = 2.0;
  world.enable_faults(injector, policy);
  const fault::FailureModel model =
      fault::FailureModel::exponential(kNodeMtbf);
  fault::FailureTimeline timeline(model, kRanks, /*seed=*/7);
  // A crash knocks its node out for a millisecond — long enough to kill
  // every in-flight message and interrupt work_for() on all ranks, short
  // enough that the retry ladder rides the application over it.  The
  // LOST WORK comes from the rollback protocol below, not from the
  // outage duration, exactly as in the checkpoint model.
  injector.load_node_timeline(timeline, /*horizon=*/2.0 * kWork,
                              /*repair_after=*/1e-3);

  // Crash events are pre-scheduled out to the horizon, so the app's
  // finish time is recorded in-program (world.run() would measure the
  // last injector event instead).
  std::vector<double> done(kRanks, 0.0);
  world.launch([&, tau](simrt::SimComm& c) -> des::Task<void> {
    double committed = 0.0;
    std::uint64_t seen = 0;
    while (committed < kWork) {
      const double seg = std::min(tau, kWork - committed);
      co_await injector.work_for(seg);
      co_await c.barrier();
      if (injector.crashes() != seen) {
        // Someone died mid-segment: the whole job rolls back to the last
        // checkpoint.  Discard the segment, wait out the repair, pay R.
        seen = injector.crashes();
        co_await injector.await_all_nodes_up();
        co_await c.sleep(kRestart);
        continue;
      }
      co_await c.sleep(kDelta);  // coordinated checkpoint
      committed += seg;
    }
    done[static_cast<std::size_t>(c.rank())] = c.now();
    co_return;
  });

  world.run();
  CheckpointResult out;
  for (const double d : done) out.wall = std::max(out.wall, d);
  out.measured = kWork / out.wall;
  out.analytic = fault::analytic_efficiency(cc, tau);
  out.sampled = fault::simulate_efficiency(cc, tau, kWork, /*seed=*/7);
  out.crashes = injector.crashes();
  return out;
}

}  // namespace

int main() {
  bench::Report report("bench_d4_fault",
                       "Fault injection through the fast data path: "
                       "detection latency, retry overhead, checkpoint "
                       "efficiency vs Daly");

  // 1. Detection latency.
  const DetectionResult det = run_detection();
  std::printf("-- detection latency (crash at t=3.0, period 0.1s)\n");
  std::printf("   timeout detector: %.3f s\n", det.timeout_latency);
  std::printf("   phi detector:     %.3f s\n", det.phi_latency);
  report.add("detection.timeout.latency_s", det.timeout_latency, "s");
  report.add("detection.phi.latency_s", det.phi_latency, "s");

  // 2. Retry overhead at falling link MTBF.
  const RingResult clean = run_ring(0.0);
  std::printf("\n-- ring exchange retry overhead (clean: %.3f s)\n",
              clean.seconds);
  report.add("retry.clean_time_s", clean.seconds, "s");
  std::vector<double> mtbfs = {8.0, 2.0, 0.5};
  bool ok = clean.drops == 0;
  const std::vector<std::string> labels = {"8s", "2s", "500ms"};
  for (std::size_t i = 0; i < mtbfs.size(); ++i) {
    const double mtbf = mtbfs[i];
    const RingResult r = run_ring(mtbf);
    const double overhead =
        100.0 * (r.seconds - clean.seconds) / clean.seconds;
    std::printf("   link MTBF %5.1f s: %.3f s (+%.2f%%), %llu retries, "
                "%llu drops\n",
                mtbf, r.seconds, overhead,
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.drops));
    const std::string prefix = "retry.mtbf_" + labels[i] + ".";
    report.add(prefix + "overhead_pct", overhead, "%");
    report.add(prefix + "retries", static_cast<double>(r.retries), "count");
    report.add(prefix + "drops", static_cast<double>(r.drops), "count");
    if (r.drops != 0) {
      std::cerr << "ERROR: ring exchange dropped messages at MTBF " << mtbf
                << "\n";
      ok = false;
    }
  }

  // 3. Checkpoint efficiency against Daly.
  const CheckpointResult cp = run_checkpoint();
  const double gap_analytic =
      100.0 * (cp.measured - cp.analytic) / cp.analytic;
  const double gap_sampled = 100.0 * (cp.measured - cp.sampled) / cp.sampled;
  std::printf("\n-- checkpoint efficiency at Daly's interval\n");
  std::printf("   measured (DES app): %.4f  (wall %.0f s, %llu crashes)\n",
              cp.measured, cp.wall,
              static_cast<unsigned long long>(cp.crashes));
  std::printf("   analytic:           %.4f  (gap %+.2f%%)\n", cp.analytic,
              gap_analytic);
  std::printf("   monte-carlo:        %.4f  (gap %+.2f%%)\n", cp.sampled,
              gap_sampled);
  report.add("checkpoint.measured_efficiency", cp.measured, "fraction");
  report.add("checkpoint.analytic_efficiency", cp.analytic, "fraction");
  report.add("checkpoint.sampled_efficiency", cp.sampled, "fraction");
  report.add("checkpoint.gap_vs_analytic_pct", gap_analytic, "%");
  report.add("checkpoint.crashes", static_cast<double>(cp.crashes),
             "count");
  report.note("checkpoint.config",
              "8 ranks, node MTBF 8h, delta 30s, R 60s, work 180000s");

  if (!report.write_file("BENCH_FAULT.json")) {
    std::cerr << "warning: could not write BENCH_FAULT.json\n";
  }
  std::cout << "\nWrote BENCH_FAULT.json.\n";

  if (det.timeout_latency < 0.0 || det.phi_latency < 0.0) {
    std::cerr << "ERROR: a detector never suspected the crashed node\n";
    ok = false;
  }
  if (gap_analytic < -5.0 || gap_analytic > 5.0) {
    std::cerr << "ERROR: measured checkpoint efficiency " << cp.measured
              << " deviates more than 5% from analytic " << cp.analytic
              << "\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
