// F6 — Application scaling on Beowulf-class systems.
//
// The 2-D halo-exchange stencil (weak scaling) and the CG-like solver
// (strong-scaling behaviour of its latency-bound allreduces) across
// fabrics and rank counts.
#include <iostream>

#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"

int main() {
  using namespace polaris;
  const std::size_t rank_set[] = {4, 16, 64, 256};
  const std::vector<fabric::FabricParams> fabrics = {
      fabric::fabrics::gig_ethernet(), fabric::fabrics::myrinet2000(),
      fabric::fabrics::infiniband_4x()};

  support::Table halo("F6a: halo2d weak scaling (256^2 per rank, 10 iter): "
                      "time and comm%");
  std::vector<std::string> header{"ranks"};
  for (const auto& f : fabrics) {
    header.push_back(f.name + " time");
    header.push_back(f.name + " comm%");
  }
  halo.header(header);
  workload::Halo2DConfig hcfg;
  hcfg.iterations = 10;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& f : fabrics) {
      workload::AppResult res;
      simrt::SimWorld world(p, f);
      world.launch(workload::make_halo2d(hcfg, p, &res));
      world.run();
      row.push_back(support::format_time(res.elapsed));
      row.push_back(support::Table::to_cell(100.0 * res.comm_fraction));
    }
    halo.row(row);
  }
  halo.print(std::cout);

  std::cout << "\n";
  support::Table cg("F6b: CG-like solver, 20 iterations (allreduce-bound): "
                    "time and comm%");
  cg.header(header);
  workload::CgConfig ccfg;
  ccfg.iterations = 20;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& f : fabrics) {
      workload::AppResult res;
      simrt::SimWorld world(p, f);
      world.launch(workload::make_cg(ccfg, p, &res));
      world.run();
      row.push_back(support::format_time(res.elapsed));
      row.push_back(support::Table::to_cell(100.0 * res.comm_fraction));
    }
    cg.row(row);
  }
  cg.print(std::cout);

  std::cout << "\n";
  support::Table ep("F6c: embarrassingly parallel sweep (1 Gflop/rank) — "
                    "the easy case");
  ep.header({"ranks", "gig-ethernet", "infiniband-4x"});
  workload::EpConfig ecfg;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& f :
         {fabric::fabrics::gig_ethernet(), fabric::fabrics::infiniband_4x()}) {
      workload::AppResult res;
      simrt::SimWorld world(p, f);
      world.launch(workload::make_ep(ecfg, &res));
      world.run();
      row.push_back(support::format_time(res.elapsed));
    }
    ep.row(row);
  }
  ep.print(std::cout);

  std::cout << "\n";
  support::Table d3(
      "F6d: 3-D halo exchange (64^3 per rank, 5 iter) and N-to-1 incast "
      "(64 KiB x 3 rounds), InfiniBand");
  d3.header({"ranks", "halo3d time", "halo3d comm%", "incast time"});
  workload::Halo3DConfig h3cfg;
  h3cfg.iterations = 5;
  workload::IncastConfig icfg;
  icfg.rounds = 3;
  for (std::size_t p : {8u, 27u, 64u, 125u}) {
    workload::AppResult hres, ires;
    {
      simrt::SimWorld world(p, fabric::fabrics::infiniband_4x());
      world.launch(workload::make_halo3d(h3cfg, p, &hres));
      world.run();
    }
    {
      simrt::SimWorld world(p, fabric::fabrics::infiniband_4x());
      world.launch(workload::make_incast(icfg, &ires));
      world.run();
    }
    d3.add(static_cast<unsigned long long>(p),
           support::format_time(hres.elapsed),
           support::Table::to_cell(100.0 * hres.comm_fraction),
           support::format_time(ires.elapsed));
  }
  d3.print(std::cout);

  std::cout << "\nShape: halo exchange weak-scales everywhere (comm% grows "
               "mildly);\nCG's tiny allreduces are where kernel Ethernet "
               "collapses as ranks grow\n(comm%% -> dominant) while "
               "user-level fabrics hold; EP scales anywhere; the\nincast "
               "column grows ~linearly in senders (rank 0's downlink "
               "serializes),\nthe commercial-workload pattern the talk's "
               "new customer base brings.\n";
  return 0;
}
