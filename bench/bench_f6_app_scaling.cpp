// F6 — Application scaling on Beowulf-class systems.
//
// The 2-D halo-exchange stencil (weak scaling) and the CG-like solver
// (strong-scaling behaviour of its latency-bound allreduces) across
// fabrics and rank counts.
//
// Each (app, ranks, fabric) cell simulates an independent world, so the
// grids fan out across a SweepRunner thread pool; tables print from the
// ordered result vectors and are byte-identical at any thread count.
#include <cstddef>
#include <iostream>
#include <vector>

#include "polaris/des/sweep.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"

namespace {

using polaris::workload::AppResult;

}  // namespace

int main() {
  using namespace polaris;
  const std::size_t rank_set[] = {4, 16, 64, 256};
  const std::vector<fabric::FabricParams> fabrics = {
      fabric::fabrics::gig_ethernet(), fabric::fabrics::myrinet2000(),
      fabric::fabrics::infiniband_4x()};

  des::SweepRunner runner;

  support::Table halo("F6a: halo2d weak scaling (256^2 per rank, 10 iter): "
                      "time and comm%");
  std::vector<std::string> header{"ranks"};
  for (const auto& f : fabrics) {
    header.push_back(f.name + " time");
    header.push_back(f.name + " comm%");
  }
  halo.header(header);
  workload::Halo2DConfig hcfg;
  hcfg.iterations = 10;
  struct GridPoint {
    std::size_t ranks;
    fabric::FabricParams fabric;
  };
  std::vector<GridPoint> grid;
  for (std::size_t p : rank_set) {
    for (const auto& f : fabrics) grid.push_back({p, f});
  }
  const std::vector<AppResult> halo_res = runner.map(
      grid, [&hcfg](const GridPoint& g, std::size_t) {
        AppResult res;
        simrt::SimWorld world(g.ranks, g.fabric);
        world.launch(workload::make_halo2d(hcfg, g.ranks, &res));
        world.run();
        return res;
      });
  std::size_t at = 0;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      const AppResult& res = halo_res[at++];
      row.push_back(support::format_time(res.elapsed));
      row.push_back(support::Table::to_cell(100.0 * res.comm_fraction));
    }
    halo.row(row);
  }
  halo.print(std::cout);

  std::cout << "\n";
  support::Table cg("F6b: CG-like solver, 20 iterations (allreduce-bound): "
                    "time and comm%");
  cg.header(header);
  workload::CgConfig ccfg;
  ccfg.iterations = 20;
  const std::vector<AppResult> cg_res = runner.map(
      grid, [&ccfg](const GridPoint& g, std::size_t) {
        AppResult res;
        simrt::SimWorld world(g.ranks, g.fabric);
        world.launch(workload::make_cg(ccfg, g.ranks, &res));
        world.run();
        return res;
      });
  at = 0;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      const AppResult& res = cg_res[at++];
      row.push_back(support::format_time(res.elapsed));
      row.push_back(support::Table::to_cell(100.0 * res.comm_fraction));
    }
    cg.row(row);
  }
  cg.print(std::cout);

  std::cout << "\n";
  support::Table ep("F6c: embarrassingly parallel sweep (1 Gflop/rank) — "
                    "the easy case");
  ep.header({"ranks", "gig-ethernet", "infiniband-4x"});
  workload::EpConfig ecfg;
  std::vector<GridPoint> ep_grid;
  for (std::size_t p : rank_set) {
    for (const auto& f :
         {fabric::fabrics::gig_ethernet(), fabric::fabrics::infiniband_4x()}) {
      ep_grid.push_back({p, f});
    }
  }
  const std::vector<AppResult> ep_res = runner.map(
      ep_grid, [&ecfg](const GridPoint& g, std::size_t) {
        AppResult res;
        simrt::SimWorld world(g.ranks, g.fabric);
        world.launch(workload::make_ep(ecfg, &res));
        world.run();
        return res;
      });
  at = 0;
  for (std::size_t p : rank_set) {
    std::vector<std::string> row{std::to_string(p)};
    row.push_back(support::format_time(ep_res[at++].elapsed));
    row.push_back(support::format_time(ep_res[at++].elapsed));
    ep.row(row);
  }
  ep.print(std::cout);

  std::cout << "\n";
  support::Table d3(
      "F6d: 3-D halo exchange (64^3 per rank, 5 iter) and N-to-1 incast "
      "(64 KiB x 3 rounds), InfiniBand");
  d3.header({"ranks", "halo3d time", "halo3d comm%", "incast time"});
  workload::Halo3DConfig h3cfg;
  h3cfg.iterations = 5;
  workload::IncastConfig icfg;
  icfg.rounds = 3;
  const std::vector<std::size_t> d3_ranks{8, 27, 64, 125};
  struct D3Result {
    AppResult halo;
    AppResult incast;
  };
  const std::vector<D3Result> d3_res = runner.map(
      d3_ranks, [&h3cfg, &icfg](std::size_t p, std::size_t) {
        D3Result out;
        {
          simrt::SimWorld world(p, fabric::fabrics::infiniband_4x());
          world.launch(workload::make_halo3d(h3cfg, p, &out.halo));
          world.run();
        }
        {
          simrt::SimWorld world(p, fabric::fabrics::infiniband_4x());
          world.launch(workload::make_incast(icfg, &out.incast));
          world.run();
        }
        return out;
      });
  for (std::size_t i = 0; i < d3_ranks.size(); ++i) {
    d3.add(static_cast<unsigned long long>(d3_ranks[i]),
           support::format_time(d3_res[i].halo.elapsed),
           support::Table::to_cell(100.0 * d3_res[i].halo.comm_fraction),
           support::format_time(d3_res[i].incast.elapsed));
  }
  d3.print(std::cout);

  std::cout << "\nShape: halo exchange weak-scales everywhere (comm% grows "
               "mildly);\nCG's tiny allreduces are where kernel Ethernet "
               "collapses as ranks grow\n(comm%% -> dominant) while "
               "user-level fabrics hold; EP scales anywhere; the\nincast "
               "column grows ~linearly in senders (rank 0's downlink "
               "serializes),\nthe commercial-workload pattern the talk's "
               "new customer base brings.\n";
  return 0;
}
