// F3 — The user-level messaging story in LogGP terms.
//
// Extracts (L, o_s, o_r, g, G) for every fabric, prints message rates and
// predicted one-way times, the eager/rendezvous protocol crossovers, and
// the registration-cache ablation (pin-down cost amortized vs not).
#include <iostream>
#include <limits>

#include "polaris/fabric/loggp.hpp"
#include "polaris/msg/protocol.hpp"
#include "polaris/msg/reg_cache.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;

  support::Table lg("F3a: LogGP parameters per fabric (1 switch hop)");
  lg.header({"fabric", "L", "o_send", "o_recv", "g", "G (ns/B)",
             "msg rate (/s)", "1/G"});
  for (const auto& p : fabric::fabrics::all()) {
    const auto x = fabric::extract_loggp(p, 1);
    lg.add(p.name, support::format_time(x.L), support::format_time(x.o_s),
           support::format_time(x.o_r), support::format_time(x.g),
           support::Table::to_cell(x.G * 1e9),
           support::Table::to_cell(x.message_rate()),
           support::format_rate(x.bandwidth()));
  }
  lg.print(std::cout);

  std::cout << "\n";
  support::Table co("F3b: protocol cost decomposition and eager/rendezvous "
                    "crossover");
  co.header({"fabric", "eager 1KiB", "eager 256KiB", "rdv/rdma 256KiB",
             "analytic crossover", "configured threshold"});
  for (const auto& p : fabric::fabrics::all()) {
    const auto e1 = msg::cost_model(p, msg::Protocol::kEager, 1024);
    const auto e256 = msg::cost_model(p, msg::Protocol::kEager, 256 * 1024);
    const auto big = p.rdma ? msg::Protocol::kRdma : msg::Protocol::kRendezvous;
    const auto r256 = msg::cost_model(p, big, 256 * 1024);
    const auto x = msg::crossover_bytes(p);
    co.add(p.name, support::format_time(e1.total()),
           support::format_time(e256.total()),
           support::format_time(r256.total()),
           x == std::numeric_limits<std::uint64_t>::max()
               ? std::string("never (kernel copies)")
               : support::format_bytes(x),
           support::format_bytes(p.eager_threshold));
  }
  co.print(std::cout);

  std::cout << "\n";
  support::Table rc("F3c: registration-cache ablation, 64 KiB rendezvous "
                    "send repeated 1000x");
  rc.header({"fabric", "no cache (s total)", "cached (s total)", "saving"});
  for (const auto& p : fabric::fabrics::all()) {
    if (!p.os_bypass || (p.reg_base == 0.0 && p.reg_per_page == 0.0)) {
      continue;
    }
    const double one_reg =
        p.reg_base + p.reg_per_page * (64.0 * 1024.0 / 4096.0);
    const double uncached = 1000.0 * 2.0 * one_reg;
    msg::RegistrationCache cache(64u << 20, p.reg_base, p.reg_per_page);
    double cached = 0.0;
    for (int i = 0; i < 1000; ++i) {
      cached += 2.0 * cache.acquire(0x100000, 64 * 1024);
    }
    rc.add(p.name, support::Table::to_cell(uncached),
           support::Table::to_cell(cached),
           support::Table::to_cell(uncached / std::max(cached, 1e-12)));
  }
  rc.print(std::cout);

  std::cout << "\nShape: OS-bypass collapses o and g by an order of "
               "magnitude; kernel fabrics\nnever profit from rendezvous "
               "(copies dominate); the pin-down cache turns\nper-message "
               "registration into a one-time cost.\n";
  return 0;
}
