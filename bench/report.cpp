#include "report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace polaris::bench {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  // JSON has no NaN/Inf; null keeps the file parseable if a measurement
  // went sideways.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void Report::write(std::ostream& os) const {
  os << "{\n";
  os << "  \"tool\": ";
  write_escaped(os, tool_);
  os << ",\n  \"description\": ";
  write_escaped(os, description_);
  os << ",\n  \"schema_version\": 1";
  os << ",\n  \"notes\": {";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    os << (i ? ", " : "");
    write_escaped(os, notes_[i].first);
    os << ": ";
    write_escaped(os, notes_[i].second);
  }
  os << "},\n  \"results\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    os << "{\"name\": ";
    write_escaped(os, results_[i].name);
    os << ", \"value\": ";
    write_number(os, results_[i].value);
    os << ", \"unit\": ";
    write_escaped(os, results_[i].unit);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

bool Report::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace polaris::bench
