// F10 — Scheduling and fault recovery operating together: goodput of a
// failing machine with and without checkpointing, as scale explodes.
//
// The integrated form of the talk's system-software thesis: at small scale
// the two curves coincide (failures are rare); as the machine grows, the
// no-checkpoint goodput collapses (every kill restarts a long job from
// scratch) while Daly-interval checkpointing gives most of the machine
// back to the users.
#include <iostream>

#include "polaris/sched/fault_aware.hpp"
#include "polaris/sched/trace.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;

  support::Table t("F10: goodput on a failing machine (node MTBF 0.5 y, "
                   "1 h repair, 1-4 day jobs, load ~0.8)");
  t.header({"nodes", "failures", "kills naked", "kills ckpt",
            "goodput naked", "goodput ckpt", "waste/node naked",
            "waste/node ckpt"});

  for (std::size_t nodes : {64u, 256u, 1024u, 4096u}) {
    sched::TraceConfig tc;
    tc.jobs = 600;
    tc.max_width_exp = 5;  // up to 32-node jobs
    tc.min_runtime = 24.0 * 3600.0;
    tc.max_runtime = 96.0 * 3600.0;
    // Scale arrivals so offered load stays ~0.8 as the machine grows.
    tc.mean_interarrival = 2.75e6 / static_cast<double>(nodes);
    const auto jobs = sched::generate_trace(tc, 77);

    sched::FaultAwareConfig cfg;
    cfg.nodes = nodes;
    cfg.node_mtbf = 0.5 * 365 * 86400.0;
    cfg.repair_time = 3600.0;

    auto naked = cfg;
    naked.checkpointing = false;
    auto ckpt = cfg;
    ckpt.checkpointing = true;

    const auto mn = sched::run_fault_aware(jobs, naked);
    const auto mc = sched::run_fault_aware(jobs, ckpt);
    t.add(static_cast<unsigned long long>(nodes),
          static_cast<unsigned long long>(mn.failures),
          static_cast<unsigned long long>(mn.job_kills),
          static_cast<unsigned long long>(mc.job_kills),
          support::Table::to_cell(mn.goodput),
          support::Table::to_cell(mc.goodput),
          support::format_time(mn.wasted_node_seconds /
                               static_cast<double>(nodes)),
          support::format_time(mc.wasted_node_seconds /
                               static_cast<double>(nodes)));
  }
  t.print(std::cout);

  std::cout << "\nShape: failures scale with node count; without "
               "checkpointing, each kill\nrestarts a day-scale job from "
               "zero and goodput collapses with scale;\nDaly checkpointing "
               "bounds the loss per failure to one interval and holds\n"
               "goodput — the management software carrying the burden, as "
               "the talk says.\n";
  return 0;
}
