// D1 — DES core throughput: the ceiling on every other experiment.
//
// Measures schedule/fire and schedule/cancel event throughput of the pooled
// timer-wheel + 4-ary-heap engine against an in-file replica of the seed
// engine
// (std::priority_queue + unordered_set cancellation + a callback wrapper
// that heap-allocates every target, exactly as the seed's UniqueFunction
// did), plus the coroutine resume rate that bounds simulated-rank progress,
// and the SweepRunner's multi-core scaling on independent engine instances.
//
// Emits BENCH_DES.json and BENCH_SWEEP.json in the working directory so
// successive PRs have a recorded perf trajectory.  POLARIS_BENCH_BUDGET_MS
// shrinks the workload for CI smoke runs (default ~2000 ms per section).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/sweep.hpp"
#include "polaris/des/task.hpp"
#include "polaris/support/table.hpp"
#include "report.hpp"

namespace {

using polaris::des::SimTime;

// ------------------------------------------------------ seed-engine replica
//
// Faithful copy of the pre-replacement hot path so the speedup is measured
// against the real baseline, not a strawman: binary heap of events, a
// hash-set consulted (and mutated) per cancel/pop, and one heap allocation
// per scheduled callback.

/// The seed's UniqueFunction: unconditional unique_ptr type erasure.
class HeapFunction {
 public:
  HeapFunction() = default;
  template <typename F>
  HeapFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {
  }
  HeapFunction(HeapFunction&&) noexcept = default;
  HeapFunction& operator=(HeapFunction&&) noexcept = default;
  void operator()() { impl_->invoke(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void invoke() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void invoke() override { fn(); }
    F fn;
  };
  std::unique_ptr<Concept> impl_;
};

class SeedEngine {
 public:
  struct EventId {
    std::uint64_t seq = 0;
  };

  SimTime now() const { return now_; }

  EventId schedule_after(SimTime dt, HeapFunction cb) {
    const std::uint64_t seq = next_seq_++;
    queue_.push(Event{now_ + dt, seq, std::move(cb)});
    return EventId{seq};
  }

  void cancel(EventId id) { cancelled_.insert(id.seq); }

  std::size_t run() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.t;
      ev.cb();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    HeapFunction cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
};

// ------------------------------------------------------------- workloads

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Timer-wheel-style churn: `depth` self-rescheduling timers with mixed
/// short/long deltas keep the queue at a realistic working depth while
/// `events` total events fire.  Returns events/second.
template <typename Engine>
double bench_schedule_fire(std::uint64_t events, std::uint64_t depth) {
  Engine eng;
  std::uint64_t remaining = events;
  std::uint32_t lcg = 0x1234567;
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    --remaining;
    lcg = lcg * 1664525u + 1013904223u;
    eng.schedule_after(1 + (lcg >> 20), [&] { tick(); });
  };
  for (std::uint64_t i = 0; i < depth; ++i) {
    eng.schedule_after(1 + i, [&] { tick(); });
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  return static_cast<double>(events + depth) / seconds_since(t0);
}

/// Schedule bursts and cancel 7/8 of them before they fire (the protocol
/// timeout pattern: almost every timeout is cancelled by the ack).
/// Returns (schedule+cancel+fire) operations per second.
template <typename Engine>
double bench_schedule_cancel(std::uint64_t bursts, std::uint64_t burst) {
  Engine eng;
  std::uint64_t ops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<typename Engine::EventId> ids;
  ids.reserve(burst);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    ids.clear();
    for (std::uint64_t i = 0; i < burst; ++i) {
      ids.push_back(eng.schedule_after(1000 + i, [] {}));
    }
    for (std::uint64_t i = 0; i < burst; ++i) {
      if (i % 8 != 0) eng.cancel(ids[i]);
    }
    eng.run();
    ops += 2 * burst;
  }
  return static_cast<double>(ops) / seconds_since(t0);
}

/// Coroutine resume throughput on the real engine: `procs` processes each
/// awaiting `rounds` unit delays.  Returns resumes/second.
double bench_coroutine_resume(std::uint64_t procs, std::uint64_t rounds) {
  polaris::des::Engine eng;
  auto proc = [](polaris::des::Engine& e,
                 std::uint64_t n) -> polaris::des::Task<void> {
    for (std::uint64_t i = 0; i < n; ++i) {
      co_await polaris::des::delay(e, 1);
    }
  };
  for (std::uint64_t p = 0; p < procs; ++p) {
    eng.spawn(proc(eng, rounds));
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  return static_cast<double>(procs * rounds) / seconds_since(t0);
}

// Adapter so the templated workloads can drive polaris::des::Engine with
// the same surface as SeedEngine.
struct RealEngine {
  using EventId = polaris::des::EventId;
  polaris::des::Engine eng;
  SimTime now() const { return eng.now(); }
  EventId schedule_after(SimTime dt, polaris::des::Engine::Callback cb) {
    return eng.schedule_after(dt, std::move(cb));
  }
  void cancel(EventId id) { eng.cancel(id); }
  std::size_t run() { return eng.run(); }
};

// ------------------------------------------------------- sweep scaling

struct SweepOutcome {
  double serial_s = 0;
  double parallel_s = 0;
  std::size_t threads = 0;
  bool identical = false;
};

/// Runs `points` independent engine workloads serially and on a thread
/// pool; results must match exactly (determinism) while wall time drops.
SweepOutcome bench_sweep(std::size_t points, std::uint64_t events_per_point) {
  auto point = [events_per_point](std::size_t i) {
    polaris::des::Engine eng;
    std::uint64_t remaining = events_per_point;
    std::uint64_t acc = 0;
    auto lcg = static_cast<std::uint32_t>(
        polaris::des::sweep_seed(2002, i));
    std::function<void()> tick = [&] {
      if (remaining == 0) return;
      --remaining;
      acc += static_cast<std::uint64_t>(eng.now());
      lcg = lcg * 1664525u + 1013904223u;
      eng.schedule_after(1 + (lcg >> 22), [&] { tick(); });
    };
    eng.schedule_after(1, [&] { tick(); });
    eng.run();
    return acc;
  };
  SweepOutcome out;
  const std::size_t hw = polaris::des::SweepRunner::default_threads();
  out.threads = std::max<std::size_t>(2, std::min<std::size_t>(hw, 4));

  const auto t0 = std::chrono::steady_clock::now();
  const auto serial = polaris::des::SweepRunner(1).run(points, point);
  out.serial_s = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const auto parallel =
      polaris::des::SweepRunner(out.threads).run(points, point);
  out.parallel_s = seconds_since(t1);

  out.identical = serial == parallel;
  return out;
}

}  // namespace

int main() {
  using namespace polaris;

  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }
  // ~2M events/s is a floor even for the seed engine, so budget_ms*2000
  // events keeps each seed-side section within the budget.
  const auto events = static_cast<std::uint64_t>(budget_ms * 2000.0);
  const std::uint64_t depth = 1024;
  const std::uint64_t burst = 1024;
  const std::uint64_t bursts = std::max<std::uint64_t>(1, events / (2 * burst));

  support::Table t("D1: DES core throughput (seed replica vs pooled engine)");
  t.header({"workload", "seed (Mops/s)", "pooled (Mops/s)", "speedup"});

  const double fire_seed = bench_schedule_fire<SeedEngine>(events, depth);
  const double fire_new = bench_schedule_fire<RealEngine>(events, depth);
  t.add("schedule+fire", support::Table::to_cell(fire_seed / 1e6),
        support::Table::to_cell(fire_new / 1e6),
        support::Table::to_cell(fire_new / fire_seed));

  // Deep queue: the working depth a few-hundred-rank SimWorld sustains.
  // The seed's binary heap pays O(log n) cache-hostile sifts per event
  // here; the wheel stays O(1).
  const std::uint64_t deep = 256 * 1024;
  const double deep_seed = bench_schedule_fire<SeedEngine>(events, deep);
  const double deep_new = bench_schedule_fire<RealEngine>(events, deep);
  t.add("schedule+fire deep", support::Table::to_cell(deep_seed / 1e6),
        support::Table::to_cell(deep_new / 1e6),
        support::Table::to_cell(deep_new / deep_seed));

  const double cancel_seed = bench_schedule_cancel<SeedEngine>(bursts, burst);
  const double cancel_new = bench_schedule_cancel<RealEngine>(bursts, burst);
  t.add("schedule+cancel", support::Table::to_cell(cancel_seed / 1e6),
        support::Table::to_cell(cancel_new / 1e6),
        support::Table::to_cell(cancel_new / cancel_seed));

  const std::uint64_t procs = 512;
  const std::uint64_t rounds = std::max<std::uint64_t>(1, events / procs);
  const double resume = bench_coroutine_resume(procs, rounds);
  t.add("coroutine resume", std::string("-"),
        support::Table::to_cell(resume / 1e6), std::string("-"));
  t.print(std::cout);

  bench::Report des_report(
      "bench_d1_des_core",
      "DES engine schedule/fire/cancel throughput, seed replica vs pooled "
      "timer-wheel + 4-ary-heap engine, plus coroutine resume rate");
  des_report.note("budget_ms", std::to_string(budget_ms));
  des_report.note("queue_depth", std::to_string(depth));
  des_report.note("deep_queue_depth", std::to_string(deep));
  des_report.add("seed.schedule_fire.events_per_sec", fire_seed, "events/s");
  des_report.add("pooled.schedule_fire.events_per_sec", fire_new,
                 "events/s");
  des_report.add("schedule_fire.speedup", fire_new / fire_seed, "x");
  des_report.add("seed.schedule_fire_deep.events_per_sec", deep_seed,
                 "events/s");
  des_report.add("pooled.schedule_fire_deep.events_per_sec", deep_new,
                 "events/s");
  des_report.add("schedule_fire_deep.speedup", deep_new / deep_seed, "x");
  des_report.add("seed.schedule_cancel.ops_per_sec", cancel_seed, "ops/s");
  des_report.add("pooled.schedule_cancel.ops_per_sec", cancel_new, "ops/s");
  des_report.add("schedule_cancel.speedup", cancel_new / cancel_seed, "x");
  des_report.add("pooled.coroutine_resume.resumes_per_sec", resume,
                 "resumes/s");
  if (!des_report.write_file("BENCH_DES.json")) {
    std::cerr << "warning: could not write BENCH_DES.json\n";
  }

  const std::size_t sweep_points = 16;
  const auto per_point = std::max<std::uint64_t>(10000, events / 16);
  const SweepOutcome sw = bench_sweep(sweep_points, per_point);
  std::cout << "\n";
  support::Table st("D1b: SweepRunner scaling (" +
                    std::to_string(sweep_points) + " independent engines)");
  st.header({"mode", "wall (s)", "speedup", "identical results"});
  st.add("serial", support::Table::to_cell(sw.serial_s),
         support::Table::to_cell(1.0), std::string("-"));
  st.add(std::to_string(sw.threads) + " threads",
         support::Table::to_cell(sw.parallel_s),
         support::Table::to_cell(sw.serial_s / sw.parallel_s),
         sw.identical ? "yes" : "NO (BUG)");
  st.print(std::cout);

  bench::Report sweep_report(
      "bench_d1_des_core",
      "SweepRunner wall-clock scaling over independent engine instances; "
      "parallel results must be identical to serial");
  sweep_report.note("points", std::to_string(sweep_points));
  sweep_report.note("events_per_point", std::to_string(per_point));
  sweep_report.note("hardware_concurrency",
                    std::to_string(std::thread::hardware_concurrency()));
  sweep_report.add("sweep.serial.wall_s", sw.serial_s, "s");
  sweep_report.add("sweep.parallel.wall_s", sw.parallel_s, "s");
  sweep_report.add("sweep.parallel.threads",
                   static_cast<double>(sw.threads), "threads");
  sweep_report.add("sweep.speedup", sw.serial_s / sw.parallel_s, "x");
  sweep_report.add("sweep.results_identical", sw.identical ? 1.0 : 0.0,
                   "bool");
  if (!sweep_report.write_file("BENCH_SWEEP.json")) {
    std::cerr << "warning: could not write BENCH_SWEEP.json\n";
  }

  std::cout << "\nWrote BENCH_DES.json and BENCH_SWEEP.json.\n";
  return sw.identical ? 0 : 1;
}
