// F4 — Collective algorithm scaling.
//
// Simulated allreduce/broadcast/barrier across node counts and payloads,
// per algorithm, over InfiniBand fat trees; shows the linear->log->ring
// crossovers and that automatic selection tracks the per-regime winner.
//
// Every (ranks, payload, algorithm) cell is an independent simulation, so
// the grid fans out across a SweepRunner thread pool; result vectors come
// back in point order and the printed tables are byte-identical no matter
// how many threads ran (POLARIS_SWEEP_THREADS=1 forces serial).
#include <cstddef>
#include <iostream>
#include <vector>

#include "polaris/coll/cost.hpp"
#include "polaris/des/sweep.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

namespace {

/// One grid cell: simulate `ranks` executing the schedule for this
/// collective/algorithm with a payload of `count` x `elem_bytes`.
struct Cell {
  polaris::coll::Collective kind;
  polaris::coll::Algorithm algo;
  std::size_t ranks;
  std::size_t count;
  std::size_t elem_bytes;
  int root = 0;
};

double timed(const Cell& cell) {
  using namespace polaris;
  coll::Schedule schedule;
  switch (cell.kind) {
    case coll::Collective::kAllreduce:
      schedule = coll::allreduce(cell.ranks, cell.count, cell.algo);
      break;
    case coll::Collective::kBroadcast:
      schedule =
          coll::broadcast(cell.ranks, cell.count, cell.root, cell.algo);
      break;
    default:
      schedule = coll::barrier(cell.ranks, cell.algo);
      break;
  }
  simrt::SimWorld world(cell.ranks,
                        fabric::fabrics::infiniband_4x());
  world.launch(
      [&](simrt::SimComm& c) -> des::Task<void> {
        co_await c.run_schedule(schedule, cell.elem_bytes);
      });
  return world.run();
}

}  // namespace

int main() {
  using namespace polaris;
  const std::size_t rank_set[] = {4, 16, 64, 256};
  const coll::Algorithm ar_algos[] = {
      coll::Algorithm::kBinomial, coll::Algorithm::kRing,
      coll::Algorithm::kRecursiveDoubling, coll::Algorithm::kRabenseifner};

  des::SweepRunner runner;

  // One flat grid per figure; each consumed in point order below.
  std::vector<Cell> ar_cells;
  for (std::size_t p : rank_set) {
    for (std::size_t count : {std::size_t{1}, std::size_t{128 * 1024}}) {
      for (coll::Algorithm a : ar_algos) {
        ar_cells.push_back(
            {coll::Collective::kAllreduce, a, p, count, 8});
      }
    }
  }
  const std::vector<double> ar_times =
      runner.map(ar_cells, [](const Cell& c, std::size_t) { return timed(c); });

  support::Table ar8("F4a: allreduce, 8 B payload (latency regime)");
  support::Table ar1m("F4b: allreduce, 1 MiB payload (bandwidth regime)");
  for (auto* t : {&ar8, &ar1m}) {
    t->header({"ranks", "binomial", "ring", "recursive-doubling",
               "rabenseifner", "selected"});
  }
  std::size_t ar_at = 0;
  for (std::size_t p : rank_set) {
    for (auto [table, count] :
         {std::pair<support::Table*, std::size_t>{&ar8, 1},
          {&ar1m, 128 * 1024}}) {
      std::vector<std::string> row{std::to_string(p)};
      for (std::size_t a = 0; a < std::size(ar_algos); ++a) {
        row.push_back(support::format_time(ar_times[ar_at++]));
      }
      // Selection column.
      simrt::SimWorld probe(p, fabric::fabrics::infiniband_4x());
      const auto best = coll::select_algorithm(
          coll::Collective::kAllreduce, p, count, 8, probe.loggp());
      row.push_back(coll::to_string(best));
      table->row(row);
    }
  }
  ar8.print(std::cout);
  std::cout << "\n";
  ar1m.print(std::cout);

  std::cout << "\n";
  std::vector<Cell> bc_cells;
  for (std::size_t p : rank_set) {
    for (coll::Algorithm a : {coll::Algorithm::kLinear,
                              coll::Algorithm::kBinomial,
                              coll::Algorithm::kRing}) {
      bc_cells.push_back(
          {coll::Collective::kBroadcast, a, p, 64 * 1024, 1});
    }
  }
  const std::vector<double> bc_times =
      runner.map(bc_cells, [](const Cell& c, std::size_t) { return timed(c); });
  support::Table bc("F4c: broadcast 64 KiB by algorithm");
  bc.header({"ranks", "linear", "binomial", "ring-pipelined"});
  std::size_t bc_at = 0;
  for (std::size_t p : rank_set) {
    bc.add(static_cast<unsigned long long>(p),
           support::format_time(bc_times[bc_at]),
           support::format_time(bc_times[bc_at + 1]),
           support::format_time(bc_times[bc_at + 2]));
    bc_at += 3;
  }
  bc.print(std::cout);

  std::cout << "\n";
  std::vector<Cell> ba_cells;
  for (std::size_t p : {4u, 16u, 64u, 256u, 1024u}) {
    for (coll::Algorithm a :
         {coll::Algorithm::kDissemination, coll::Algorithm::kLinear}) {
      ba_cells.push_back({coll::Collective::kBarrier, a, p, 1, 1});
    }
  }
  const std::vector<double> ba_times =
      runner.map(ba_cells, [](const Cell& c, std::size_t) { return timed(c); });
  support::Table ba("F4d: barrier");
  ba.header({"ranks", "dissemination", "linear"});
  std::size_t ba_at = 0;
  for (std::size_t p : {4u, 16u, 64u, 256u, 1024u}) {
    ba.add(static_cast<unsigned long long>(p),
           support::format_time(ba_times[ba_at]),
           support::format_time(ba_times[ba_at + 1]));
    ba_at += 2;
  }
  ba.print(std::cout);

  std::cout << "\nShape: log-depth algorithms beat linear beyond ~8 nodes;"
               "\nring wins large-message allreduce (bandwidth-optimal), "
               "recursive\ndoubling wins tiny payloads; selection tracks "
               "the winner per regime.\n";
  return 0;
}
