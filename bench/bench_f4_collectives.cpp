// F4 — Collective algorithm scaling.
//
// Simulated allreduce/broadcast/barrier across node counts and payloads,
// per algorithm, over InfiniBand fat trees; shows the linear->log->ring
// crossovers and that automatic selection tracks the per-regime winner.
#include <iostream>

#include "polaris/coll/cost.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

namespace {

double timed(std::size_t ranks, const polaris::coll::Schedule& schedule,
             std::size_t elem_bytes) {
  polaris::simrt::SimWorld world(ranks,
                                 polaris::fabric::fabrics::infiniband_4x());
  world.launch(
      [&](polaris::simrt::SimComm& c) -> polaris::des::Task<void> {
        co_await c.run_schedule(schedule, elem_bytes);
      });
  return world.run();
}

}  // namespace

int main() {
  using namespace polaris;
  const std::size_t rank_set[] = {4, 16, 64, 256};

  support::Table ar8("F4a: allreduce, 8 B payload (latency regime)");
  support::Table ar1m("F4b: allreduce, 1 MiB payload (bandwidth regime)");
  for (auto* t : {&ar8, &ar1m}) {
    t->header({"ranks", "binomial", "ring", "recursive-doubling",
               "rabenseifner", "selected"});
  }
  for (std::size_t p : rank_set) {
    for (auto [table, count] :
         {std::pair<support::Table*, std::size_t>{&ar8, 1},
          {&ar1m, 128 * 1024}}) {
      std::vector<std::string> row{std::to_string(p)};
      for (coll::Algorithm a :
           {coll::Algorithm::kBinomial, coll::Algorithm::kRing,
            coll::Algorithm::kRecursiveDoubling,
            coll::Algorithm::kRabenseifner}) {
        row.push_back(support::format_time(
            timed(p, coll::allreduce(p, count, a), 8)));
      }
      // Selection column.
      simrt::SimWorld probe(p, fabric::fabrics::infiniband_4x());
      const auto best = coll::select_algorithm(
          coll::Collective::kAllreduce, p, count, 8, probe.loggp());
      row.push_back(coll::to_string(best));
      table->row(row);
    }
  }
  ar8.print(std::cout);
  std::cout << "\n";
  ar1m.print(std::cout);

  std::cout << "\n";
  support::Table bc("F4c: broadcast 64 KiB by algorithm");
  bc.header({"ranks", "linear", "binomial", "ring-pipelined"});
  for (std::size_t p : rank_set) {
    bc.add(static_cast<unsigned long long>(p),
           support::format_time(
               timed(p, coll::broadcast(p, 64 * 1024, 0,
                                        coll::Algorithm::kLinear), 1)),
           support::format_time(
               timed(p, coll::broadcast(p, 64 * 1024, 0,
                                        coll::Algorithm::kBinomial), 1)),
           support::format_time(timed(
               p, coll::broadcast(p, 64 * 1024, 0, coll::Algorithm::kRing),
               1)));
  }
  bc.print(std::cout);

  std::cout << "\n";
  support::Table ba("F4d: barrier");
  ba.header({"ranks", "dissemination", "linear"});
  for (std::size_t p : {4u, 16u, 64u, 256u, 1024u}) {
    ba.add(static_cast<unsigned long long>(p),
           support::format_time(
               timed(p, coll::barrier(p, coll::Algorithm::kDissemination),
                     1)),
           support::format_time(
               timed(p, coll::barrier(p, coll::Algorithm::kLinear), 1)));
  }
  ba.print(std::cout);

  std::cout << "\nShape: log-depth algorithms beat linear beyond ~8 nodes;"
               "\nring wins large-message allreduce (bandwidth-optimal), "
               "recursive\ndoubling wins tiny payloads; selection tracks "
               "the winner per regime.\n";
  return 0;
}
