// A1 — Ablations of the design choices DESIGN.md §3 calls out.
//
//  A1a  eager/rendezvous threshold: sweep the crossover per fabric and at
//       application level (CG), validating the configured defaults.
//  A1b  registration cache: reusing a pinned buffer vs registering fresh
//       memory on every rendezvous send.
//  A1c  schedules-as-data: the generic schedule executor vs a hand-fused
//       ring allreduce coroutine — the abstraction must cost nothing in
//       modelled time.
#include <iostream>

#include "polaris/coll/algorithms.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "polaris/workload/apps.hpp"

namespace {

using namespace polaris;

double one_way(fabric::FabricParams p, std::uint64_t bytes,
               std::uint32_t threshold) {
  simrt::SimWorld world(2, std::move(p), nullptr,
                        hw::NodeDesigner().design(
                            hw::NodeArch::kConventional, 2002.0),
                        threshold);
  double done = -1;
  world.launch([&](simrt::SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, bytes);
    } else {
      co_await c.recv(0, 0);
      done = c.now();
    }
  });
  world.run();
  return done;
}

// Hand-fused ring allreduce: the same communication pattern as
// coll::allreduce(kRing) but issued directly, bypassing the Schedule
// data structure.  Sendrecv steps are posted concurrently, exactly as the
// generic executor does.
des::Task<void> fused_ring_allreduce(simrt::SimComm& c, std::size_t count,
                                     std::size_t elem_bytes) {
  const int p = c.size();
  if (p == 1) co_return;
  const int right = (c.rank() + 1) % p;
  const int left = (c.rank() - 1 + p) % p;
  constexpr int kTag = 0x4000'0000;
  for (int phase = 0; phase < 2; ++phase) {
    for (int step = 0; step < p - 1; ++step) {
      const int chunk_idx =
          ((c.rank() - step + (phase == 1 ? 1 : 0)) % p + p) % p;
      const auto [off, len] = coll::chunk_range(
          count, static_cast<std::size_t>(p),
          static_cast<std::size_t>(chunk_idx));
      (void)off;
      std::uint32_t remaining = 2;
      des::Trigger done(c.engine());
      c.engine().spawn([](simrt::SimComm& cc, int peer, std::uint64_t bytes,
                          std::uint32_t& rem,
                          des::Trigger& trig) -> des::Task<void> {
        co_await cc.send(peer, kTag, bytes);
        if (--rem == 0) trig.fire();
      }(c, right, static_cast<std::uint64_t>(len) * elem_bytes, remaining,
        done));
      c.engine().spawn([](simrt::SimComm& cc, int peer, std::uint32_t& rem,
                          des::Trigger& trig) -> des::Task<void> {
        co_await cc.recv(peer, kTag);
        if (--rem == 0) trig.fire();
      }(c, left, remaining, done));
      co_await done.wait();
    }
  }
}

}  // namespace

int main() {
  using namespace polaris;

  // -- A1a: threshold sweep ----------------------------------------------------
  support::Table thr("A1a: one-way time of a 64 KiB message vs eager "
                     "threshold");
  thr.header({"threshold", "myrinet-2000", "infiniband-4x"});
  for (std::uint32_t t : {1u << 10, 8u << 10, 32u << 10, 128u << 10}) {
    thr.add(support::format_bytes(t),
            support::format_time(
                one_way(fabric::fabrics::myrinet2000(), 64 * 1024, t)),
            support::format_time(
                one_way(fabric::fabrics::infiniband_4x(), 64 * 1024, t)));
  }
  thr.print(std::cout);

  std::cout << "\n";
  support::Table app("A1a': CG (16 ranks, IB) vs forced threshold");
  app.header({"threshold", "elapsed", "comm%"});
  for (std::uint32_t t : {1u << 8, 8u << 10, 1u << 20}) {
    workload::CgConfig cfg;
    cfg.iterations = 20;
    workload::AppResult res;
    simrt::SimWorld world(16, fabric::fabrics::infiniband_4x(), nullptr,
                          hw::NodeDesigner().design(
                              hw::NodeArch::kConventional, 2002.0),
                          t);
    world.launch(workload::make_cg(cfg, 16, &res));
    world.run();
    app.add(support::format_bytes(t), support::format_time(res.elapsed),
            support::Table::to_cell(100.0 * res.comm_fraction));
  }
  app.print(std::cout);

  // -- A1b: registration cache ---------------------------------------------------
  std::cout << "\n";
  support::Table rc("A1b: 50x 1 MiB rendezvous sends (IB): pinned-buffer "
                    "reuse vs fresh registration each time");
  rc.header({"buffer pattern", "total time", "reg misses"});
  for (bool rotate : {false, true}) {
    simrt::SimWorld world(2, fabric::fabrics::infiniband_4x());
    double done = -1;
    world.launch([&, rotate](simrt::SimComm& c) -> des::Task<void> {
      if (c.rank() == 0) {
        for (int i = 0; i < 50; ++i) {
          const std::uintptr_t addr =
              rotate ? (static_cast<std::uintptr_t>(i + 1) << 24) : 0;
          co_await c.send(1, 0, 1 << 20, addr);
        }
      } else {
        for (int i = 0; i < 50; ++i) co_await c.recv(0, 0);
        done = c.now();
      }
    });
    world.run();
    rc.add(rotate ? "fresh buffer each send" : "reused pinned buffer",
           support::format_time(done),
           static_cast<unsigned long long>(
               world.comm(0).reg_stats().misses));
  }
  rc.print(std::cout);

  // -- A1c: schedule executor vs hand-fused loop ------------------------------------
  std::cout << "\n";
  support::Table fz("A1c: ring allreduce 1 MiB, 16 ranks: generic schedule "
                    "executor vs hand-fused coroutine");
  fz.header({"variant", "simulated time"});
  const std::size_t count = 128 * 1024;  // doubles
  {
    simrt::SimWorld world(16, fabric::fabrics::infiniband_4x());
    const auto schedule = coll::allreduce(16, count, coll::Algorithm::kRing);
    world.launch([&](simrt::SimComm& c) -> des::Task<void> {
      co_await c.run_schedule(schedule, 8);
    });
    fz.add("schedule-replayed", support::format_time(world.run()));
  }
  {
    simrt::SimWorld world(16, fabric::fabrics::infiniband_4x());
    world.launch([&](simrt::SimComm& c) -> des::Task<void> {
      co_await fused_ring_allreduce(c, count, 8);
    });
    fz.add("hand-fused", support::format_time(world.run()));
  }
  fz.print(std::cout);

  std::cout << "\nReading: configured thresholds sit on the flat part of "
               "the threshold sweep;\nthe pin-down cache is worth ~2x on "
               "repeated large sends; the schedule\nabstraction costs "
               "nothing (fused differs only by sendrecv concurrency).\n";
  return 0;
}
