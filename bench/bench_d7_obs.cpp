// D7 — observability overhead: what tracing and metrics cost the hot paths
// they watch.  The claim under test: ring-buffer tracing over interned names
// is near-zero-cost — cheap enough to leave armed on million-rank runs — and
// an attached-but-disabled tracer is indistinguishable from none at all.
//
// Three representative hot loops, each run three ways:
//
//   untraced  tracer detached — the null-pointer branches the seed shipped
//   idle      ring tracer attached, tracing gated off: the record-path
//             pointer IS the enable flag, so this is the same null branch
//             the untraced run pays
//   armed     ring tracer enabled, 1-in-128 sampling: counters always on,
//             every Nth event pushed into a bounded SPSC ring
//
//   1. compute loop   (D1 shape): 4 simulated ranks spinning compute spans
//   2. fabric traffic (D2 shape): contended random traffic on a fat tree,
//      per-link busy spans on the packet walker path
//   3. halo exchange  (D3 shape): the CG halo inner loop, 16 ranks on a
//      4x4 torus exchanging 2 KiB with neighbours every round
//
// plus an informational ping-pong floor row (2-rank minimal op, worst-case
// per-message instrumentation density) that is reported but not gated.
//
// Methodology: ONE world per workload; the variant is toggled per trial via
// detach_tracer / attach_tracer + set_tracing_enabled, so all variants share
// the same engine, memory layout and coroutine allocation pattern.  Every
// idle/armed trial is bracketed by two untraced runs and compared against
// the bracket mean (cancelling linear drift); the reported overhead is the
// median over the brackets, which is robust to frequency shifts and
// interference on a shared host.
//
// A fourth section measures the raw record path and proves it allocates
// nothing in steady state: this TU overrides global operator new with a
// counter, and after warmup a mixed record window (push, drop-on-full,
// begin/end slot pool) must leave the counter — and the tracer's
// intern/ring/track capacities — exactly where they were.
//
// Emits BENCH_OBS.json.  CI asserts armed <= 5%, idle <= 1% overhead and
// steady_state_allocs == 0; the binary itself only enforces loose sanity
// ceilings so a noisy laptop run still produces a report.
// POLARIS_BENCH_BUDGET_MS scales the workloads (default ~2000 ms).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <random>
#include <streambuf>
#include <string>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/obs/clock.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/table.hpp"
#include "report.hpp"

// ------------------------------------------------------ allocation odometer
//
// Counts every global operator new in the process.  The steady-state section
// brackets a record-only window with reads of this counter; the delta must
// be zero.  Frees go straight to std::free so the override stays symmetric.
// (GCC pairs the std allocator's operator-new calls with this TU's
// free-based operator delete and warns; the pair is in fact malloc/free.)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace polaris;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0
               : (n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

/// Discards everything written to it; the armed tracers stream their rings
/// here between trials so draining never shows up inside a timed region.
struct NullBuf : std::streambuf {
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

obs::RingOptions ring_opts(std::size_t capacity, std::uint32_t sample_every) {
  obs::RingOptions opts;
  opts.ring_capacity = capacity;
  opts.sample_every = sample_every;
  return opts;
}

// The armed configuration under test: the sampling rate a million-rank run
// would actually ship with.  Sampled events pay the full push (slot claim,
// clock read, ring write); the other 127 pay only the counter bump.
constexpr std::uint32_t kSampleEvery = 128;

enum Variant { kUntraced = 0, kIdle = 1, kArmed = 2 };

/// A dropped event skips the ring write, so drops would make the armed
/// numbers look better than the tracer actually is.  The per-workload ring
/// capacities are sized so the per-trial sampled volume fits with headroom;
/// this guards that sizing.
void require_no_drops(const obs::Tracer& tracer, const char* workload) {
  const auto s = tracer.stats();
  if (s.dropped_ring_full != 0 || s.dropped_no_slot != 0) {
    std::fprintf(stderr, "FATAL: %s dropped events (ring_full=%llu no_slot=%llu)\n",
                 workload,
                 static_cast<unsigned long long>(s.dropped_ring_full),
                 static_cast<unsigned long long>(s.dropped_no_slot));
    std::exit(1);
  }
}

/// One workload's results.  Overheads come from BRACKETED ratios: every
/// idle/armed run is sandwiched between two untraced runs of the same
/// instance, and its wall is divided by the mean of the bracket — which
/// cancels linear clock/frequency drift exactly.  The median over all
/// brackets then discards interference spikes.  Cross-run wall comparisons
/// (means, best-of) swing by several percent on a shared host; the
/// bracketed median is stable to well under one percent.  The best-of
/// walls are kept for the absolute ops/s columns.
struct Matrix {
  double wall[3] = {0.0, 0.0, 0.0};   ///< best-of walls, display only
  double ratio[3] = {1.0, 1.0, 1.0};  ///< median bracketed ratio vs untraced
  double idle_pct() const { return (ratio[kIdle] - 1.0) * 100.0; }
  double armed_pct() const { return (ratio[kArmed] - 1.0) * 100.0; }

  void emit(support::Table& table, bench::Report& report,
            const std::string& row, const std::string& prefix,
            double ops) const {
    table.add(row, support::Table::to_cell(ops / wall[kUntraced]),
              support::Table::to_cell(ops / wall[kIdle]),
              support::Table::to_cell(ops / wall[kArmed]),
              support::Table::to_cell(idle_pct()),
              support::Table::to_cell(armed_pct()));
    report.add(prefix + ".untraced.ops_per_sec", ops / wall[kUntraced],
               "ops/s");
    report.add(prefix + ".idle.ops_per_sec", ops / wall[kIdle], "ops/s");
    report.add(prefix + ".armed.ops_per_sec", ops / wall[kArmed], "ops/s");
    report.add(prefix + ".idle.overhead_pct", idle_pct(), "%");
    report.add(prefix + ".armed.overhead_pct", armed_pct(), "%");
  }
};

/// Runs `trials` traced trials (idle and armed alternating), each bracketed
/// by untraced runs, over one shared workload instance.  `select(v)` flips
/// the instance into variant v; `run()` executes one timed trial;
/// `settle()` runs after every armed trial (ring drain, outside any timed
/// region).
template <class Select, class Run, class Settle>
Matrix measure(int trials, Select&& select, Run&& run, Settle&& settle) {
  std::vector<double> walls[3], idle_ratio, armed_ratio;
  for (int v = 0; v < 3; ++v) {  // warmup each variant once
    select(static_cast<Variant>(v));
    (void)run();
    if (v == kArmed) settle();
  }
  select(kUntraced);
  double u_prev = run();
  walls[kUntraced].push_back(u_prev);
  for (int t = 0; t < trials; ++t) {
    const Variant v = (t % 2 == 0) ? kIdle : kArmed;
    select(v);
    const double x = run();
    walls[v].push_back(x);
    select(kUntraced);
    if (v == kArmed) {
      settle();    // drain rings outside any timed region...
      (void)run();  // ...and re-warm caches so the drain's footprint does
                    // not deflate the next bracketing baseline.
    }
    const double u_next = run();
    walls[kUntraced].push_back(u_next);
    (v == kIdle ? idle_ratio : armed_ratio)
        .push_back(x / (0.5 * (u_prev + u_next)));
    u_prev = u_next;
  }
  Matrix m;
  for (int v = 0; v < 3; ++v) m.wall[v] = best_of(walls[v]);
  m.ratio[kIdle] = median(idle_ratio);
  m.ratio[kArmed] = median(armed_ratio);
  return m;
}

}  // namespace

int main() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }
  // Trials are deliberately SHORT (a few ms) and MANY: machine-speed states
  // that persist for tens of ms then hit every variant equally, and the
  // median over dozens of brackets squeezes the estimator noise well under
  // a percent.  Budgets below the default shrink the per-trial workload;
  // budgets above it buy more brackets instead of longer trials.
  const auto scaled = [budget_ms](std::uint64_t base) {
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(base) * std::min(budget_ms, 2000.0) / 2000.0);
    return std::max<std::uint64_t>(base / 10, std::max<std::uint64_t>(64, v));
  };
  // Traced trials per workload (idle and armed alternate, so half each);
  // every one is bracketed by two untraced runs.
  const int trials =
      budget_ms >= 1000.0
          ? std::min(200, static_cast<int>(50.0 * budget_ms / 2000.0))
          : 6;

  bench::Report report(
      "bench_d7_obs",
      "Observability overhead: ring-buffer tracing and sharded metrics vs "
      "untraced hot loops (compute, fabric, eager message stream)");
  report.note("budget_ms", std::to_string(budget_ms));
  report.note("trials", std::to_string(trials));
  report.note("sample_every", std::to_string(kSampleEvery));

  NullBuf null_buf;
  std::ostream null_stream(&null_buf);

  support::Table table(
      "D7: hot-loop throughput untraced / tracer idle / tracer armed "
      "(ops/s best-of, overheads median of " + std::to_string(trials / 2) +
      " untraced-bracketed trials)");
  table.header({"workload", "untraced (ops/s)", "idle (ops/s)",
                "armed (ops/s)", "idle ovh %", "armed ovh %"});

  // -- 1. compute loop -------------------------------------------------------
  const std::uint64_t comp_rounds = scaled(15'000);
  Matrix compute;
  {
    simrt::SimWorld world(4, fabric::fabrics::infiniband_4x());
    obs::SimClock clock(world.engine());
    obs::Tracer tracer(clock, ring_opts(1 << 9, kSampleEvery));
    world.attach_tracer(tracer);
    obs::TraceStreamWriter writer(tracer, null_stream);

    compute = measure(
        trials,
        [&](Variant v) {
          if (v == kUntraced) {
            world.detach_tracer();
          } else {
            world.attach_tracer(tracer);
            world.set_tracing_enabled(v == kArmed);
          }
        },
        [&] {
          world.launch([rounds = comp_rounds](
                           simrt::SimComm& c) -> des::Task<void> {
            for (std::uint64_t i = 0; i < rounds; ++i) {
              co_await c.compute(2.0e6, 0.0);
            }
          });
          const auto t0 = std::chrono::steady_clock::now();
          world.run();
          return seconds_since(t0);
        },
        [&] { writer.drain(); });
    compute.emit(table, report, "compute loop", "compute",
                 4.0 * static_cast<double>(comp_rounds));
    require_no_drops(tracer, "compute");
    report.add("compute.armed.sampled_events",
               static_cast<double>(tracer.stats().sampled_events), "events");
  }

  // -- 2. fabric contended traffic ------------------------------------------
  const fabric::FatTree topo(4);  // 16 hosts
  const std::size_t senders = 16;
  const std::uint64_t per_sender = scaled(250);
  const std::uint64_t fb_bytes = 6000;  // 4 packets at mtu 1500: walker tier
  Matrix fabric_m;
  {
    des::Engine engine;
    fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
    obs::SimClock clock(engine);
    obs::Tracer tracer(clock, ring_opts(1 << 8, kSampleEvery));
    net.attach_tracer(tracer);
    obs::TraceStreamWriter writer(tracer, null_stream);

    const std::size_t hosts = topo.node_count();
    fabric_m = measure(
        trials,
        [&](Variant v) {
          if (v == kUntraced) {
            net.detach_tracer();
          } else {
            net.attach_tracer(tracer);
            net.set_tracing_enabled(v == kArmed);
          }
        },
        [&] {
          for (std::size_t s = 0; s < senders; ++s) {
            engine.spawn([](fabric::SimNetwork& n, std::uint64_t seed,
                            std::size_t nodes, std::uint64_t msgs,
                            std::uint64_t sz) -> des::Task<void> {
              std::mt19937_64 rng(seed);
              for (std::uint64_t i = 0; i < msgs; ++i) {
                const auto src = static_cast<fabric::NodeId>(rng() % nodes);
                auto dst = static_cast<fabric::NodeId>(rng() % nodes);
                if (dst == src) {
                  dst = static_cast<fabric::NodeId>((dst + 1) % nodes);
                }
                co_await n.transfer(src, dst, sz);
              }
            }(net, 1000 + s, hosts, per_sender, fb_bytes));
          }
          const auto t0 = std::chrono::steady_clock::now();
          engine.run();
          return seconds_since(t0);
        },
        [&] { writer.drain(); });
    fabric_m.emit(table, report, "fabric traffic", "fabric",
                  static_cast<double>(senders * per_sender));
    require_no_drops(tracer, "fabric");
    report.add("fabric.armed.sampled_events",
               static_cast<double>(tracer.stats().sampled_events), "events");
  }

  // -- 3. halo exchange (D3 app hot path) ------------------------------------
  //
  // The CG-pattern halo inner loop from D3: 16 ranks on a 4x4 torus, each
  // round posting 4 irecvs + 4 isends of 2 KiB and wait_all-ing them.  This
  // is the messaging loop an application actually spins in, so it is the
  // shape the armed ceiling gates on.
  const std::uint64_t halo_rounds = scaled(500);
  constexpr int kGrid = 4;
  Matrix halo;
  {
    simrt::SimWorld world(kGrid * kGrid, fabric::fabrics::myrinet2000());
    obs::SimClock clock(world.engine());
    obs::Tracer tracer(clock, ring_opts(1 << 9, kSampleEvery));
    world.attach_tracer(tracer);
    obs::TraceStreamWriter writer(tracer, null_stream);

    halo = measure(
        trials,
        [&](Variant v) {
          if (v == kUntraced) {
            world.detach_tracer();
          } else {
            world.attach_tracer(tracer);
            world.set_tracing_enabled(v == kArmed);
          }
        },
        [&] {
          world.launch([rounds = halo_rounds](
                           simrt::SimComm& c) -> des::Task<void> {
            const int x = c.rank() % kGrid;
            const int y = c.rank() / kGrid;
            const int nbr[4] = {y * kGrid + (x + 1) % kGrid,
                                y * kGrid + (x + kGrid - 1) % kGrid,
                                ((y + 1) % kGrid) * kGrid + x,
                                ((y + kGrid - 1) % kGrid) * kGrid + x};
            std::vector<simrt::SimRequest> reqs;
            for (std::uint64_t r = 0; r < rounds; ++r) {
              reqs.clear();
              for (const int n : nbr) reqs.push_back(c.irecv(n, 0));
              for (const int n : nbr) reqs.push_back(c.isend(n, 0, 2048));
              co_await c.wait_all(reqs);
            }
          });
          const auto t0 = std::chrono::steady_clock::now();
          world.run();
          return seconds_since(t0);
        },
        [&] { writer.drain(); });
    halo.emit(table, report, "halo exchange", "halo",
              static_cast<double>(halo_rounds) * kGrid * kGrid * 4);
    require_no_drops(tracer, "halo");
    report.add("halo.armed.sampled_events",
               static_cast<double>(tracer.stats().sampled_events), "events");
  }

  // -- 3b. eager ping-pong floor (informational) -----------------------------
  //
  // 2-rank, 256-byte ping-pong: the smallest possible op carrying the full
  // per-message span set (send, inject, recv, wait, cpu, per-link busy), so
  // the fixed instrumentation cost is maximally exposed — roughly 7 events
  // per ~350 ns op.  Reported as the worst-case floor; NOT included in the
  // gated maxima, which cover the representative hot loops above.
  const std::uint64_t pp_rounds = scaled(4'000);
  Matrix pingpong;
  {
    simrt::SimWorld world(2, fabric::fabrics::infiniband_4x());
    obs::SimClock clock(world.engine());
    obs::Tracer tracer(clock, ring_opts(1 << 10, kSampleEvery));
    world.attach_tracer(tracer);
    obs::TraceStreamWriter writer(tracer, null_stream);

    pingpong = measure(
        trials,
        [&](Variant v) {
          if (v == kUntraced) {
            world.detach_tracer();
          } else {
            world.attach_tracer(tracer);
            world.set_tracing_enabled(v == kArmed);
          }
        },
        [&] {
          world.launch([rounds = pp_rounds](
                           simrt::SimComm& c) -> des::Task<void> {
            for (std::uint64_t i = 0; i < rounds; ++i) {
              if (c.rank() == 0) {
                co_await c.send(1, 0, 256);
                co_await c.recv(1, 1);
              } else {
                co_await c.recv(0, 0);
                co_await c.send(0, 1, 256);
              }
            }
          });
          const auto t0 = std::chrono::steady_clock::now();
          world.run();
          return seconds_since(t0);
        },
        [&] { writer.drain(); });
    pingpong.emit(table, report, "ping-pong floor", "pingpong",
                  2.0 * static_cast<double>(pp_rounds));
    require_no_drops(tracer, "pingpong");
    report.add("pingpong.armed.sampled_events",
               static_cast<double>(tracer.stats().sampled_events), "events");
  }

  table.print(std::cout);

  // Gated maxima cover the representative hot loops; the ping-pong floor
  // row is reported above but documents the worst case rather than gating.
  const double idle_max =
      std::max({compute.idle_pct(), fabric_m.idle_pct(), halo.idle_pct()});
  const double armed_max =
      std::max({compute.armed_pct(), fabric_m.armed_pct(), halo.armed_pct()});
  report.add("idle.max_overhead_pct", idle_max, "%");
  report.add("armed.max_overhead_pct", armed_max, "%");

  // -- 4. record-path throughput + steady-state allocations ------------------
  //
  // Drive the tracer directly: 4 tracks, sampled complete-span traffic,
  // ring sized so the throughput window fits without drops (the
  // push path, not the drop path, is the steady state being measured).
  // Then a mixed record-only window — spans, instants, counters, begin/end
  // through the slot pool, rings running full — must perform zero heap
  // allocations and leave every capacity in Tracer::stats() untouched.
  double record_mops = 0.0;
  double export_meps = 0.0;
  std::uint64_t alloc_delta = 0, intern_delta = 0, ring_delta = 0;
  std::uint64_t track_delta = 0;
  {
    obs::WallClock clock;
    obs::Tracer tracer(clock, ring_opts(1 << 18, kSampleEvery));
    std::vector<obs::TrackId> tracks;
    std::vector<obs::NameId> names;
    for (int t = 0; t < 4; ++t) {
      tracks.push_back(tracer.add_track("bench", "lane " + std::to_string(t)));
      names.push_back(tracer.intern("op" + std::to_string(t)));
    }
    const obs::NameId cat = tracer.intern("work");
    obs::TraceStreamWriter writer(tracer, null_stream);

    // Warmup: touch every path once so lazy setup is behind us.
    for (int t = 0; t < 4; ++t) {
      for (int i = 0; i < 10'000; ++i) {
        tracer.complete_span(tracks[t], names[t], cat, i, 1);
      }
      const obs::SpanId s = tracer.begin_span(tracks[t], names[t]);
      tracer.end_span(s);
      tracer.instant(tracks[t], names[t]);
      tracer.counter(tracks[t], names[t], 1.0);
    }
    writer.drain();

    // Pure record throughput: 1-in-8 sampled pushes all fit in the rings.
    const std::uint64_t thr_n = scaled(8'000'000);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < thr_n; ++i) {
      tracer.complete_span(tracks[i & 3], names[i & 3], cat,
                           static_cast<std::int64_t>(i), 1);
    }
    const double thr_s = seconds_since(t0);
    record_mops = static_cast<double>(thr_n) / thr_s / 1e6;

    // Streaming-export throughput: drain what the window sampled.
    const std::uint64_t pending = tracer.event_count();
    t0 = std::chrono::steady_clock::now();
    writer.drain();
    const double drain_s = seconds_since(t0);
    export_meps = static_cast<double>(pending) / drain_s / 1e6;

    // Allocation window: record only, mixed kinds, rings allowed to fill.
    const obs::Tracer::Stats before = tracer.stats();
    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t alloc_n = scaled(1'000'000);
    for (std::uint64_t i = 0; i < alloc_n; ++i) {
      const std::size_t t = i & 3;
      switch (i & 15u) {
        case 0: {
          const obs::SpanId s = tracer.begin_span(tracks[t], names[t]);
          tracer.end_span(s);
          break;
        }
        case 1:
          tracer.instant(tracks[t], names[t]);
          break;
        case 2:
          tracer.counter(tracks[t], names[t], static_cast<double>(i));
          break;
        default:
          tracer.complete_span(tracks[t], names[t], cat,
                               static_cast<std::int64_t>(i), 1);
      }
    }
    const std::uint64_t allocs_after =
        g_allocs.load(std::memory_order_relaxed);
    const obs::Tracer::Stats after = tracer.stats();
    alloc_delta = allocs_after - allocs_before;
    intern_delta = after.interned_names - before.interned_names;
    ring_delta = after.ring_capacity_events - before.ring_capacity_events;
    track_delta = after.track_count - before.track_count;
    writer.finish();

    std::cout << "\n";
    support::Table t4("D7b: record path, 4 tracks, 1-in-" +
                      std::to_string(kSampleEvery) + " sampling");
    t4.header({"metric", "value"});
    t4.add("record throughput (Mops/s)", support::Table::to_cell(record_mops));
    t4.add("stream export (Mevents/s)", support::Table::to_cell(export_meps));
    t4.add("allocs in record-only window", std::to_string(alloc_delta));
    t4.add("interned-name delta", std::to_string(intern_delta));
    t4.add("ring-capacity delta (events)", std::to_string(ring_delta));
    t4.add("track-count delta", std::to_string(track_delta));
    t4.print(std::cout);
    report.add("record.mops_per_sec", record_mops, "Mops/s");
    report.add("export.mevents_per_sec", export_meps, "Mevents/s");
    report.add("record.steady_state_allocs", static_cast<double>(alloc_delta),
               "allocs");
    report.add("record.interned_names_delta",
               static_cast<double>(intern_delta), "names");
    report.add("record.ring_capacity_delta", static_cast<double>(ring_delta),
               "events");
    report.note("record.window_ops", std::to_string(alloc_n));
  }

  if (!report.write_file("BENCH_OBS.json")) {
    std::cerr << "FATAL: could not write BENCH_OBS.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_OBS.json\n";

  // Loose local sanity ceilings; CI asserts the tight ones (<=5% armed,
  // <=1% idle) from the JSON, where the runner is quiet and the budget full.
  if (alloc_delta != 0 || intern_delta != 0 || ring_delta != 0 ||
      track_delta != 0) {
    std::cerr << "FATAL: record path touched the heap in steady state "
              << "(allocs=" << alloc_delta << " interns=" << intern_delta
              << " ring=" << ring_delta << " tracks=" << track_delta << ")\n";
    return 1;
  }
  if (armed_max > 25.0) {
    std::cerr << "FATAL: armed tracing overhead " << armed_max
              << "% is far above the 5% ceiling\n";
    return 1;
  }
  if (idle_max > 10.0) {
    std::cerr << "FATAL: idle tracer overhead " << idle_max
              << "% is far above the 1% ceiling\n";
    return 1;
  }
  return 0;
}
