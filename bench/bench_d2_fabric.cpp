// D2 — fabric data-path throughput: the two-tier packet engine against the
// semaphore-reference model it replaced.
//
// Three sections, each driving fabric::SimNetwork (analytic flights +
// pooled packet walkers) and fabric::ReferenceNetwork (per-packet
// coroutines + per-link semaphores) through the same traffic:
//
//  1. Uncontended ping-pong (the F2 microbenchmark's wire half): serial
//     request/response between a cross-pod host pair.  Every message must
//     take the analytic bypass — one event per message — so the reported
//     bypass rate is asserted at 1.0.
//  2. Contended random traffic on a fat tree: the walker tier against the
//     semaphore tier where congestion is real.
//  3. 1024-host recursive-doubling allreduce (the F4 collective sweep's
//     inner loop): 10 rounds of 1024 simultaneous same-size exchanges on a
//     k=16 fat tree, end-to-end wall time.
//
// Emits BENCH_FABRIC.json.  POLARIS_BENCH_BUDGET_MS shrinks workloads for
// CI smoke runs (default ~2000 ms per section).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/reference.hpp"
#include "polaris/support/table.hpp"
#include "report.hpp"

namespace {

using namespace polaris;
using fabric::NodeId;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------------- ping-pong

/// Serial request/response: one message in flight at a time, `count`
/// messages total.  Returns wall seconds.
template <class Net>
double run_pingpong(Net& net, NodeId a, NodeId b, std::uint64_t bytes,
                    std::uint64_t count) {
  net.engine().spawn([](Net& n, NodeId x, NodeId y, std::uint64_t sz,
                        std::uint64_t msgs) -> des::Task<void> {
    for (std::uint64_t i = 0; i < msgs; i += 2) {
      co_await n.transfer(x, y, sz);
      co_await n.transfer(y, x, sz);
    }
  }(net, a, b, bytes, count));
  const auto t0 = std::chrono::steady_clock::now();
  net.engine().run();
  return seconds_since(t0);
}

// ------------------------------------------------------ contended traffic

/// `senders` concurrent processes each sending `per_sender` random-pair
/// messages back to back.  Paths collide constantly on the fat tree's
/// shared up/down links.  Returns wall seconds.
template <class Net>
double run_contended(Net& net, std::size_t nodes, std::size_t senders,
                     std::uint64_t per_sender, std::uint64_t bytes) {
  for (std::size_t s = 0; s < senders; ++s) {
    net.engine().spawn([](Net& n, std::uint64_t seed, std::size_t hosts,
                          std::uint64_t msgs,
                          std::uint64_t sz) -> des::Task<void> {
      std::mt19937_64 rng(seed);
      for (std::uint64_t i = 0; i < msgs; ++i) {
        const auto src = static_cast<NodeId>(rng() % hosts);
        auto dst = static_cast<NodeId>(rng() % hosts);
        if (dst == src) dst = static_cast<NodeId>((dst + 1) % hosts);
        co_await n.transfer(src, dst, sz);
      }
    }(net, 1000 + s, nodes, per_sender, bytes));
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.engine().run();
  return seconds_since(t0);
}

// ---------------------------------------------------------- allreduce 1024

/// Recursive-doubling allreduce: log2(nodes) rounds; in round r every host
/// exchanges `bytes` with its partner (rank XOR 2^r).  Rounds are
/// barrier-separated by draining the engine.  Returns wall seconds.
template <class Net>
double run_allreduce(Net& net, std::size_t nodes, std::uint64_t bytes,
                     std::uint64_t reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    for (std::size_t r = 1; r < nodes; r <<= 1) {
      for (std::size_t i = 0; i < nodes; ++i) {
        net.engine().spawn(
            [](Net& n, NodeId s, NodeId d, std::uint64_t sz) -> des::Task<void> {
              co_await n.transfer(s, d, sz);
            }(net, static_cast<NodeId>(i), static_cast<NodeId>(i ^ r), bytes));
      }
      net.engine().run();
    }
  }
  return seconds_since(t0);
}

}  // namespace

int main() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }

  bench::Report report(
      "bench_d2_fabric",
      "Packet-level network data path: two-tier engine (analytic bypass + "
      "pooled walkers) vs the semaphore-reference model, same traffic");
  report.note("budget_ms", std::to_string(budget_ms));

  // -- 1. uncontended ping-pong --------------------------------------------
  // Cross-pod pair on a k=4 fat tree: 6 links each way, the deepest
  // uncontended path the small topology offers.
  const fabric::FatTree pp_topo(4);
  const fabric::FabricParams pp_params = fabric::fabrics::myrinet2000();
  // The reference model clears ~100k msgs/s at minimum, so budget_ms*50
  // messages keeps its (slower) side inside the budget.
  const auto pp_count =
      std::max<std::uint64_t>(20'000, static_cast<std::uint64_t>(budget_ms) * 50);

  support::Table t1("D2a: uncontended ping-pong, host 0 <-> 15, fat-tree k=4");
  t1.header({"bytes", "semaphore (msg/s)", "two-tier (msg/s)", "speedup",
             "bypass rate"});
  bool bypass_all = true;
  double pingpong_min_speedup = 1e30;
  for (const std::uint64_t bytes : {64ull, 4096ull, 65536ull}) {
    des::Engine ref_eng;
    fabric::ReferenceNetwork ref(ref_eng, pp_params, pp_topo);
    const double ref_s = run_pingpong(ref, 0, 15, bytes, pp_count);

    des::Engine fast_eng;
    fabric::SimNetwork fast(fast_eng, pp_params, pp_topo);
    const double fast_s = run_pingpong(fast, 0, 15, bytes, pp_count);

    const double ref_rate = static_cast<double>(pp_count) / ref_s;
    const double fast_rate = static_cast<double>(pp_count) / fast_s;
    const double rate = fast.stats().bypass_rate();
    bypass_all = bypass_all && rate == 1.0;
    pingpong_min_speedup = std::min(pingpong_min_speedup, fast_rate / ref_rate);
    t1.add(support::Table::to_cell(static_cast<double>(bytes)),
           support::Table::to_cell(ref_rate),
           support::Table::to_cell(fast_rate),
           support::Table::to_cell(fast_rate / ref_rate),
           support::Table::to_cell(rate));
    const std::string tag = "pingpong." + std::to_string(bytes) + "B.";
    report.add(tag + "semaphore.msgs_per_sec", ref_rate, "msgs/s");
    report.add(tag + "two_tier.msgs_per_sec", fast_rate, "msgs/s");
    report.add(tag + "speedup", fast_rate / ref_rate, "x");
    report.add(tag + "bypass_rate", rate, "fraction");
  }
  t1.print(std::cout);
  report.note("pingpong.messages", std::to_string(pp_count));
  report.add("pingpong.min_speedup", pingpong_min_speedup, "x");
  report.add("pingpong.all_bypassed", bypass_all ? 1.0 : 0.0, "bool");

  // -- 2. contended random traffic ------------------------------------------
  const fabric::FatTree ct_topo(4);
  const std::size_t senders = 32;
  const auto per_sender =
      std::max<std::uint64_t>(500, static_cast<std::uint64_t>(budget_ms) / 2);
  const std::uint64_t ct_bytes = 6000;  // 4 packets at mtu 1500

  des::Engine ct_ref_eng;
  fabric::ReferenceNetwork ct_ref(ct_ref_eng, pp_params, ct_topo);
  const double ct_ref_s =
      run_contended(ct_ref, ct_topo.node_count(), senders, per_sender, ct_bytes);

  des::Engine ct_fast_eng;
  fabric::SimNetwork ct_fast(ct_fast_eng, pp_params, ct_topo);
  const double ct_fast_s = run_contended(ct_fast, ct_topo.node_count(), senders,
                                         per_sender, ct_bytes);

  const double ct_msgs = static_cast<double>(senders * per_sender);
  std::cout << "\n";
  support::Table t2("D2b: contended random traffic, 32 senders, fat-tree k=4");
  t2.header({"model", "msgs/s", "speedup"});
  t2.add("semaphore", support::Table::to_cell(ct_msgs / ct_ref_s),
         support::Table::to_cell(1.0));
  t2.add("two-tier", support::Table::to_cell(ct_msgs / ct_fast_s),
         support::Table::to_cell(ct_ref_s / ct_fast_s));
  t2.print(std::cout);
  report.note("contended.messages",
              std::to_string(senders * per_sender));
  report.add("contended.semaphore.msgs_per_sec", ct_msgs / ct_ref_s, "msgs/s");
  report.add("contended.two_tier.msgs_per_sec", ct_msgs / ct_fast_s, "msgs/s");
  report.add("contended.speedup", ct_ref_s / ct_fast_s, "x");
  report.add("contended.bypass_rate", ct_fast.stats().bypass_rate(),
             "fraction");

  // -- 3. 1024-host allreduce ------------------------------------------------
  const fabric::FatTree ar_topo(16);  // 1024 hosts
  const std::uint64_t ar_bytes = 8192;
  const auto ar_reps = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(budget_ms / 2000.0));

  des::Engine ar_ref_eng;
  fabric::ReferenceNetwork ar_ref(ar_ref_eng, pp_params, ar_topo);
  const double ar_ref_s =
      run_allreduce(ar_ref, ar_topo.node_count(), ar_bytes, ar_reps);

  des::Engine ar_fast_eng;
  fabric::SimNetwork ar_fast(ar_fast_eng, pp_params, ar_topo);
  const double ar_fast_s =
      run_allreduce(ar_fast, ar_topo.node_count(), ar_bytes, ar_reps);

  std::cout << "\n";
  support::Table t3("D2c: recursive-doubling allreduce, 1024 hosts, 8 KiB, "
                    "fat-tree k=16");
  t3.header({"model", "wall (s)", "speedup"});
  t3.add("semaphore", support::Table::to_cell(ar_ref_s),
         support::Table::to_cell(1.0));
  t3.add("two-tier", support::Table::to_cell(ar_fast_s),
         support::Table::to_cell(ar_ref_s / ar_fast_s));
  t3.print(std::cout);
  report.note("allreduce.hosts", "1024");
  report.note("allreduce.bytes", std::to_string(ar_bytes));
  report.note("allreduce.reps", std::to_string(ar_reps));
  report.add("allreduce_1024.semaphore.wall_s", ar_ref_s, "s");
  report.add("allreduce_1024.two_tier.wall_s", ar_fast_s, "s");
  report.add("allreduce_1024.speedup", ar_ref_s / ar_fast_s, "x");
  report.add("allreduce_1024.bypass_rate", ar_fast.stats().bypass_rate(),
             "fraction");

  if (!report.write_file("BENCH_FABRIC.json")) {
    std::cerr << "warning: could not write BENCH_FABRIC.json\n";
  }
  std::cout << "\nWrote BENCH_FABRIC.json.\n";

  if (!bypass_all) {
    std::cerr << "ERROR: uncontended ping-pong did not fully bypass\n";
    return 1;
  }
  return 0;
}
