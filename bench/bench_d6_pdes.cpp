// D6: sharded parallel DES — simulate the scale explosion for real.
//
// Three experiments, emitted to BENCH_PDES.json:
//
//   1. Strong scaling: a 256x256 (65,536-rank) jittered halo exchange at
//      1/2/4/8 shards.  Two speedups are reported and must be read
//      differently:
//        - speedup_wall: end-to-end wall clock.  Honest but machine-bound;
//          on a single-core container it cannot exceed 1.
//        - speedup_critical_path: serial work (1-shard sum_busy) divided by
//          the busiest shard's work at 8 shards (max_shard_busy).  This is
//          the wall-clock a perfectly parallel host would see, measured —
//          not modeled — from per-shard-per-window steady_clock timings, so
//          it captures every real cost of sharding (handoff traffic, sort,
//          drain, imbalance) while being independent of the host's core
//          count.  CI gates on it staying >= 3x.
//      The golden hash must be identical at every shard count.
//   2. The same scaling shape on the CG-style program (halo + allreduce
//      per iteration) at 1 and 8 shards.
//   3. Capacity: a 1024x1024 torus — 1,048,576 ranks, the paper's
//      "explosion in scale" regime — run to completion with per-rank flat
//      state instead of per-rank coroutine stacks.
//
// Workers are leased from the shared WorkerBudget (POLARIS_SIM_THREADS),
// so shard counts above the core count time-slice on one thread instead of
// oversubscribing; shard count is a simulation parameter, worker count an
// execution detail, and neither may change the hash.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "polaris/pdes/engine.hpp"
#include "polaris/support/table.hpp"
#include "report.hpp"

namespace {

using namespace polaris;

struct ScalePoint {
  std::size_t shards = 0;
  pdes::Result res;
};

pdes::Config base_cfg(pdes::AppKind kind, std::size_t w, std::size_t h,
                      std::uint32_t iters) {
  pdes::Config cfg;
  cfg.workload.kind = kind;
  cfg.workload.grid_w = w;
  cfg.workload.grid_h = h;
  cfg.workload.iters = iters;
  cfg.workload.jitter = true;
  cfg.workload.seed = 2002;
  return cfg;
}

std::vector<ScalePoint> scale_curve(const pdes::Config& base,
                                    const std::vector<std::size_t>& shards) {
  std::vector<ScalePoint> pts;
  for (const std::size_t s : shards) {
    pdes::Config cfg = base;
    cfg.shards = s;
    pts.push_back({s, pdes::run(cfg)});
  }
  return pts;
}

bool hash_invariant(const std::vector<ScalePoint>& pts) {
  for (const ScalePoint& p : pts) {
    if (p.res.golden_hash != pts.front().res.golden_hash) return false;
  }
  return true;
}

void print_curve(const std::string& title,
                 const std::vector<ScalePoint>& pts) {
  support::Table tab(title);
  tab.header({"shards", "workers", "wall s", "crit-path s", "sum busy s",
              "events/s", "cross msgs", "windows"});
  for (const ScalePoint& p : pts) {
    tab.add(p.shards, p.res.workers, p.res.wall_s, p.res.max_shard_busy_s,
            p.res.sum_busy_s,
            p.res.sum_busy_s > 0.0
                ? static_cast<double>(p.res.events) / p.res.sum_busy_s
                : 0.0,
            p.res.msgs_cross, p.res.windows);
  }
  tab.print(std::cout);
}

void report_curve(bench::Report& report, const std::string& prefix,
                  const std::vector<ScalePoint>& pts) {
  const pdes::Result& serial = pts.front().res;
  for (const ScalePoint& p : pts) {
    const std::string at = prefix + ".shards" + std::to_string(p.shards);
    report.add(at + ".wall_s", p.res.wall_s, "s");
    report.add(at + ".critical_path_s", p.res.max_shard_busy_s, "s");
    report.add(at + ".sum_busy_s", p.res.sum_busy_s, "s");
    report.add(at + ".events_per_sec",
               p.res.sum_busy_s > 0.0
                   ? static_cast<double>(p.res.events) / p.res.sum_busy_s
                   : 0.0,
               "events/s");
  }
  const pdes::Result& widest = pts.back().res;
  report.add(prefix + ".ranks", static_cast<double>(serial.ranks_ok), "ranks");
  report.add(prefix + ".speedup_8shards_wall",
             widest.wall_s > 0.0 ? serial.wall_s / widest.wall_s : 0.0, "x");
  report.add(prefix + ".speedup_8shards_critical_path",
             widest.max_shard_busy_s > 0.0
                 ? serial.sum_busy_s / widest.max_shard_busy_s
                 : 0.0,
             "x");
  report.add(prefix + ".hash_invariant", hash_invariant(pts) ? 1.0 : 0.0,
             "bool");
}

}  // namespace

int main() {
  double budget_ms = 2000.0;
  if (const char* env = std::getenv("POLARIS_BENCH_BUDGET_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }
  // The full experiment is the acceptance configuration (64k-rank scaling,
  // 10^6-rank capacity).  A sub-second budget runs a shape-preserving
  // miniature instead — same curves, same assertions, smaller grids.
  const bool full = budget_ms >= 1000.0;

  bench::Report report("bench_d6_pdes",
                       "sharded parallel DES: strong scaling at 64k ranks "
                       "and a million-rank capacity run");
  report.note("budget_ms", std::to_string(budget_ms));
  report.note("scale", full ? "full" : "mini");

  // --- 1. halo strong scaling -----------------------------------------
  const std::size_t dim = full ? 256 : 64;
  const std::uint32_t iters = full ? 10 : 5;
  const pdes::Config halo =
      base_cfg(pdes::AppKind::kHalo, dim, dim, iters);
  const std::vector<ScalePoint> halo_pts =
      scale_curve(halo, {1, 2, 4, 8});
  print_curve("D6a: jittered halo exchange, " + std::to_string(dim) + "x" +
                  std::to_string(dim) + " torus, " + std::to_string(iters) +
                  " iters",
              halo_pts);
  report_curve(report, "halo", halo_pts);
  if (!hash_invariant(halo_pts)) {
    std::cerr << "FATAL: halo golden hash varies with shard count\n";
    return 1;
  }
  const double crit_speedup =
      halo_pts.front().res.sum_busy_s /
      halo_pts.back().res.max_shard_busy_s;
  std::cout << "Critical-path speedup at 8 shards: "
            << support::Table::to_cell(crit_speedup) << "x\n"
            << "Wall speedup at 8 shards (host-bound): "
            << support::Table::to_cell(halo_pts.front().res.wall_s /
                                       halo_pts.back().res.wall_s)
            << "x\n\n";

  // --- 2. CG scaling ----------------------------------------------------
  const pdes::Config cg =
      base_cfg(pdes::AppKind::kCg, dim, dim, full ? 5 : 3);
  const std::vector<ScalePoint> cg_pts = scale_curve(cg, {1, 8});
  print_curve("D6b: CG iteration (halo + allreduce), " +
                  std::to_string(dim) + "x" + std::to_string(dim) + " torus",
              cg_pts);
  report_curve(report, "cg", cg_pts);
  if (!hash_invariant(cg_pts)) {
    std::cerr << "FATAL: cg golden hash varies with shard count\n";
    return 1;
  }
  std::cout << "\n";

  // --- 3. million-rank capacity ----------------------------------------
  const std::size_t cap_dim = full ? 1024 : 256;
  pdes::Config cap = base_cfg(pdes::AppKind::kHalo, cap_dim, cap_dim, 2);
  cap.workload.jitter = false;
  cap.shards = 8;
  const pdes::Result capr = pdes::run(cap);
  support::Table ctab("D6c: capacity — " + std::to_string(cap_dim) + "x" +
                      std::to_string(cap_dim) + " torus, 2 iters, 8 shards");
  ctab.header({"ranks", "ok", "events", "wall s", "events/s", "peak ev nodes",
               "peak msg recs"});
  ctab.add(cap_dim * cap_dim, capr.ranks_ok, capr.events, capr.wall_s,
           capr.wall_s > 0.0
               ? static_cast<double>(capr.events) / capr.wall_s
               : 0.0,
           capr.peak_event_nodes, capr.peak_inflight_recs);
  ctab.print(std::cout);
  if (capr.ranks_ok != cap_dim * cap_dim) {
    std::cerr << "FATAL: capacity run stranded "
              << capr.ranks_failed << " ranks\n";
    return 1;
  }
  report.add("capacity.ranks", static_cast<double>(cap_dim * cap_dim),
             "ranks");
  report.add("capacity.ranks_ok", static_cast<double>(capr.ranks_ok),
             "ranks");
  report.add("capacity.events", static_cast<double>(capr.events), "events");
  report.add("capacity.wall_s", capr.wall_s, "s");
  report.add("capacity.events_per_sec",
             capr.wall_s > 0.0
                 ? static_cast<double>(capr.events) / capr.wall_s
                 : 0.0,
             "events/s");
  report.add("capacity.rank_state_bytes",
             static_cast<double>(sizeof(pdes::RankState)), "B");

  if (!report.write_file("BENCH_PDES.json")) {
    std::cerr << "warning: could not write BENCH_PDES.json\n";
  }
  std::cout << "\nWrote BENCH_PDES.json.\n";
  return 0;
}
