// F7 — Resource management: FCFS vs SJF vs EASY backfill.
//
// A 10k-job Feitelson-style synthetic trace replayed under each policy on
// 128-1024 node machines, plus a load sweep showing where backfilling's
// advantage opens up.
#include <iostream>

#include "polaris/sched/scheduler.hpp"
#include "polaris/sched/trace.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"

int main() {
  using namespace polaris;

  support::Table main_t("F7a: 10k-job trace by machine size and policy");
  main_t.header({"nodes", "policy", "load", "utilization", "mean wait",
                 "p95 wait", "mean bsld", "backfilled"});
  for (std::size_t nodes : {128u, 256u, 512u, 1024u}) {
    sched::TraceConfig cfg;
    cfg.jobs = 10000;
    cfg.max_width_exp = 7;  // jobs up to 128 nodes
    // Keep offered load ~0.85 as the machine grows (mean job is ~40
    // nodes x ~3.3 h).
    cfg.mean_interarrival = 4400.0 * 128.0 / static_cast<double>(nodes);
    const auto base = sched::generate_trace(cfg, 42);
    const double load = sched::offered_load(base, nodes);
    for (auto policy : {sched::Policy::kFcfs, sched::Policy::kSjf,
                        sched::Policy::kEasyBackfill,
                        sched::Policy::kConservative}) {
      auto jobs = base;
      const auto m = sched::run_scheduler(jobs, nodes, policy);
      main_t.add(static_cast<unsigned long long>(nodes),
                 sched::to_string(policy), support::Table::to_cell(load),
                 support::Table::to_cell(m.utilization),
                 support::format_time(m.mean_wait),
                 support::format_time(m.p95_wait),
                 support::Table::to_cell(m.mean_bounded_slowdown),
                 static_cast<unsigned long long>(m.backfilled));
    }
  }
  main_t.print(std::cout);

  std::cout << "\n";
  support::Table sweep("F7b: load sweep on 256 nodes — mean bounded "
                       "slowdown");
  sweep.header({"offered load", "fcfs", "sjf", "easy-backfill",
                "conservative"});
  for (double inter : {2650.0, 2320.0, 2060.0, 1855.0, 1686.0}) {
    sched::TraceConfig cfg;
    cfg.jobs = 6000;
    cfg.max_width_exp = 7;
    cfg.mean_interarrival = inter;
    const auto base = sched::generate_trace(cfg, 7);
    std::vector<std::string> row{
        support::Table::to_cell(sched::offered_load(base, 256))};
    for (auto policy : {sched::Policy::kFcfs, sched::Policy::kSjf,
                        sched::Policy::kEasyBackfill,
                        sched::Policy::kConservative}) {
      auto jobs = base;
      const auto m = sched::run_scheduler(jobs, 256, policy);
      row.push_back(support::Table::to_cell(m.mean_bounded_slowdown));
    }
    sweep.row(row);
  }
  sweep.print(std::cout);

  std::cout << "\nShape: EASY backfill sustains markedly lower waits and "
               "bounded slowdown\nthan FCFS at the same utilization, and "
               "the gap widens with offered load\n— the talk's 'resource "
               "management ... high productivity' tooling at work.\n";
  return 0;
}
