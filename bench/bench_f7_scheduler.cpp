// F7 — Resource management: FCFS vs SJF vs EASY backfill.
//
// A 10k-job Feitelson-style synthetic trace replayed under each policy on
// 128-1024 node machines, plus a load sweep showing where backfilling's
// advantage opens up.
//
// Every (machine size, policy) replay is independent — trace generation is
// seeded per point — so the grid fans out across a SweepRunner thread
// pool; tables print from the ordered results and are byte-identical at
// any thread count.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "polaris/des/sweep.hpp"
#include "polaris/sched/scheduler.hpp"
#include "polaris/sched/trace.hpp"
#include "polaris/support/table.hpp"
#include "polaris/support/units.hpp"
#include "report.hpp"

namespace {

constexpr polaris::sched::Policy kPolicies[] = {
    polaris::sched::Policy::kFcfs, polaris::sched::Policy::kSjf,
    polaris::sched::Policy::kEasyBackfill,
    polaris::sched::Policy::kConservative};

struct Replay {
  double load = 0;
  polaris::sched::SchedMetrics metrics;
};

}  // namespace

int main() {
  using namespace polaris;

  bench::Report report("bench_f7_scheduler",
                       "legacy scheduler policy comparison: 10k-job grid "
                       "and load sweep");

  support::Table main_t("F7a: 10k-job trace by machine size and policy");
  main_t.header({"nodes", "policy", "load", "utilization", "mean wait",
                 "p95 wait", "mean bsld", "backfilled"});
  const std::vector<std::size_t> machine_sizes{128, 256, 512, 1024};
  struct MainPoint {
    std::size_t nodes;
    sched::Policy policy;
  };
  std::vector<MainPoint> main_grid;
  for (std::size_t nodes : machine_sizes) {
    for (auto policy : kPolicies) main_grid.push_back({nodes, policy});
  }
  des::SweepRunner runner;
  const std::vector<Replay> main_res = runner.map(
      main_grid, [](const MainPoint& pt, std::size_t) {
        sched::TraceConfig cfg;
        cfg.jobs = 10000;
        cfg.max_width_exp = 7;  // jobs up to 128 nodes
        // Keep offered load ~0.85 as the machine grows (mean job is ~40
        // nodes x ~3.3 h).
        cfg.mean_interarrival =
            4400.0 * 128.0 / static_cast<double>(pt.nodes);
        auto jobs = sched::generate_trace(cfg, 42);
        Replay out;
        out.load = sched::offered_load(jobs, pt.nodes);
        out.metrics = sched::run_scheduler(jobs, pt.nodes, pt.policy);
        return out;
      });
  std::size_t at = 0;
  for (std::size_t nodes : machine_sizes) {
    for (auto policy : kPolicies) {
      const Replay& r = main_res[at++];
      main_t.add(static_cast<unsigned long long>(nodes),
                 sched::to_string(policy), support::Table::to_cell(r.load),
                 support::Table::to_cell(r.metrics.utilization),
                 support::format_time(r.metrics.mean_wait),
                 support::format_time(r.metrics.p95_wait),
                 support::Table::to_cell(r.metrics.mean_bounded_slowdown),
                 static_cast<unsigned long long>(r.metrics.backfilled));
      const std::string key = "grid.n" + std::to_string(nodes) + "." +
                              sched::to_string(policy);
      report.add(key + ".utilization", r.metrics.utilization, "fraction");
      report.add(key + ".mean_wait", r.metrics.mean_wait, "s");
      report.add(key + ".mean_bsld", r.metrics.mean_bounded_slowdown, "x");
    }
  }
  main_t.print(std::cout);

  std::cout << "\n";
  support::Table sweep("F7b: load sweep on 256 nodes — mean bounded "
                       "slowdown");
  sweep.header({"offered load", "fcfs", "sjf", "easy-backfill",
                "conservative"});
  const std::vector<double> interarrivals{2650.0, 2320.0, 2060.0, 1855.0,
                                          1686.0};
  struct SweepPoint {
    double inter;
    sched::Policy policy;
  };
  std::vector<SweepPoint> sweep_grid;
  for (double inter : interarrivals) {
    for (auto policy : kPolicies) sweep_grid.push_back({inter, policy});
  }
  const std::vector<Replay> sweep_res = runner.map(
      sweep_grid, [](const SweepPoint& pt, std::size_t) {
        sched::TraceConfig cfg;
        cfg.jobs = 6000;
        cfg.max_width_exp = 7;
        cfg.mean_interarrival = pt.inter;
        auto jobs = sched::generate_trace(cfg, 7);
        Replay out;
        out.load = sched::offered_load(jobs, 256);
        out.metrics = sched::run_scheduler(jobs, 256, pt.policy);
        return out;
      });
  at = 0;
  for (std::size_t i = 0; i < interarrivals.size(); ++i) {
    std::vector<std::string> row{
        support::Table::to_cell(sweep_res[at].load)};
    for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
      const Replay& r = sweep_res[at++];
      row.push_back(support::Table::to_cell(r.metrics.mean_bounded_slowdown));
      report.add("sweep.load" + std::to_string(i) + "." +
                     sched::to_string(kPolicies[p]) + ".mean_bsld",
                 r.metrics.mean_bounded_slowdown, "x");
      if (p == 0) {
        report.add("sweep.load" + std::to_string(i) + ".offered",
                   r.load, "fraction");
      }
    }
    sweep.row(row);
  }
  sweep.print(std::cout);

  std::cout << "\nShape: EASY backfill sustains markedly lower waits and "
               "bounded slowdown\nthan FCFS at the same utilization, and "
               "the gap widens with offered load\n— the talk's 'resource "
               "management ... high productivity' tooling at work.\n";

  if (!report.write_file("BENCH_SCHED.json")) {
    std::cerr << "warning: could not write BENCH_SCHED.json\n";
  }
  std::cout << "\nWrote BENCH_SCHED.json.\n";
  return 0;
}
